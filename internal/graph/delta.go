package graph

import (
	"fmt"
	"sort"
	"sync"
)

// This file is the versioned edge-delta layer over the immutable CSR
// (DESIGN.md §11): a bounded mutation journal on Graph, a DeltaView that
// patches a frozen base snapshot with only the touched adjacency rows, a
// partial refreeze (Compact), and an in-place dynamic-SSSP row repair
// (RepairRow) so consumers like netsim.Oracle can keep cached Dijkstra rows
// alive across topology mutations instead of rebuilding from scratch.

// MutationKind identifies one kind of structural Graph mutation recorded in
// the journal enabled by TrackMutations.
type MutationKind uint8

// The journal records four mutation kinds; AddEdge on an existing edge is
// recorded as MutSetWeight so the old weight survives for delta consumers.
const (
	// MutAddVertex records an AddVertex call; U is the new vertex, V is -1.
	MutAddVertex MutationKind = iota
	// MutAddEdge records a new undirected edge {U,V} with weight W.
	MutAddEdge
	// MutRemoveEdge records the removal of edge {U,V}; OldW is the weight
	// the edge had when removed.
	MutRemoveEdge
	// MutSetWeight records an overwrite of edge {U,V} from OldW to W.
	MutSetWeight
)

// Mutation is one recorded Graph mutation. W is the new weight (MutAddEdge,
// MutSetWeight); OldW is the previous weight (MutRemoveEdge, MutSetWeight).
type Mutation struct {
	Kind MutationKind
	U, V int
	W    float64
	OldW float64
}

// noteMutation bumps the graph version and, when tracking is on, appends to
// the journal. Overflow clears the journal and re-anchors it at the current
// version: consumers synced before the overflow get a MutationsSince miss
// and must resync from a fresh snapshot.
func (g *Graph) noteMutation(m Mutation) {
	g.version++
	if g.journalCap == 0 {
		return
	}
	if len(g.journal) >= g.journalCap {
		g.journal = g.journal[:0]
		g.journalAt = g.version
		return
	}
	g.journal = append(g.journal, m)
}

// Version returns the graph's mutation counter. It increments on every
// effective mutation (AddVertex, AddEdge, RemoveEdge, weight overwrite);
// no-op calls leave it unchanged.
func (g *Graph) Version() uint64 { return g.version }

// TrackMutations enables the bounded mutation journal with the given
// capacity (in mutations), clearing any previous journal and anchoring it
// at the current version. capacity <= 0 disables tracking. The journal is
// the feed for DeltaFrom and MutationsSince; when more than capacity
// mutations accumulate between consumer syncs the journal overflows and
// consumers fall back to a full rebuild.
func (g *Graph) TrackMutations(capacity int) {
	if capacity <= 0 {
		g.journalCap = 0
		g.journal = nil
		g.journalAt = g.version
		return
	}
	g.journalCap = capacity
	g.journal = g.journal[:0]
	g.journalAt = g.version
}

// MutationsSince returns the mutations that advanced the graph from version
// since to its current state, oldest first, and whether the journal still
// covers that window. The returned slice aliases the internal journal and
// is valid only until the next mutation. ok is false when tracking is off
// (unless since is already current), when since predates the journal
// anchor (overflow), or when since is in the future.
func (g *Graph) MutationsSince(since uint64) ([]Mutation, bool) {
	if since == g.version {
		return nil, true
	}
	if g.journalCap == 0 || since > g.version || since < g.journalAt {
		return nil, false
	}
	return g.journal[since-g.journalAt:], true
}

// NetDiff collapses a mutation sequence into its net effect on the edge
// set: edges present after the batch but not before (added, with final
// weights) and edges present before but not after (removed, with pre-batch
// weights). An edge whose weight changed appears in both lists. Mutations
// that cancel out (add then remove, remove then re-add at the same weight)
// produce nothing. Both lists are sorted by (U,V) so downstream iteration
// is deterministic. MutAddVertex entries are ignored; vertex growth is
// visible through the view's NumVertices.
func NetDiff(muts []Mutation) (added, removed []Edge) {
	type pairState struct {
		preW       float64 // weight before the batch, if preExisted
		preExisted bool
		postW      float64 // weight after the batch, if postExists
		postExists bool
	}
	states := make(map[int64]*pairState)
	key := func(u, v int) int64 {
		if u > v {
			u, v = v, u
		}
		return int64(u)<<32 | int64(v)
	}
	for _, m := range muts {
		if m.Kind == MutAddVertex {
			continue
		}
		k := key(m.U, m.V)
		st := states[k]
		if st == nil {
			st = &pairState{}
			// The first mutation touching a pair reveals its pre-batch
			// state: an add means absent, a removal or overwrite means
			// present at OldW.
			if m.Kind != MutAddEdge {
				st.preExisted = true
				st.preW = m.OldW
			}
			states[k] = st
		}
		switch m.Kind {
		case MutAddEdge, MutSetWeight:
			st.postExists = true
			st.postW = m.W
		case MutRemoveEdge:
			st.postExists = false
		}
	}
	for k, st := range states {
		u, v := int(k>>32), int(k&0xffffffff)
		switch {
		case st.preExisted && st.postExists && st.preW != st.postW:
			removed = append(removed, Edge{U: u, V: v, W: st.preW})
			added = append(added, Edge{U: u, V: v, W: st.postW})
		case st.preExisted && !st.postExists:
			removed = append(removed, Edge{U: u, V: v, W: st.preW})
		case !st.preExisted && st.postExists:
			added = append(added, Edge{U: u, V: v, W: st.postW})
		}
	}
	byPair := func(s []Edge) func(i, j int) bool {
		return func(i, j int) bool {
			if s[i].U != s[j].U {
				return s[i].U < s[j].U
			}
			return s[i].V < s[j].V
		}
	}
	sort.Slice(added, byPair(added))
	sort.Slice(removed, byPair(removed))
	return added, removed
}

// CSRView is the read interface shared by Frozen and DeltaView: sorted
// per-vertex neighbor rows plus the allocation-free Dijkstra kernels. The
// oracle holds its graph through this interface so it can swap a patched
// view in and a compacted snapshot out without touching query paths.
type CSRView interface {
	// NumVertices reports the vertex count of the view.
	NumVertices() int
	// NumEdges reports the undirected edge count of the view.
	NumEdges() int
	// Row returns u's neighbor IDs and weights in ascending neighbor
	// order as shared slices; callers must not mutate them.
	Row(u int) ([]int32, []float64)
	// ShortestPathsInto computes Dijkstra distances from src into dist
	// (length NumVertices), +Inf for unreachable vertices.
	ShortestPathsInto(src int, dist []float64)
	// ShortestPathsF32Into is ShortestPathsInto with float32 storage.
	ShortestPathsF32Into(src int, dist []float32)
}

// DeltaView is a CSR snapshot patched with the adjacency rows touched by
// mutations since a base Frozen was taken. Untouched vertices read straight
// from the base arrays; touched vertices read private row copies. Building
// one costs O(touched rows), not O(graph), which is what makes a single
// churn mutation o(rebuild). Like Frozen, a DeltaView is immutable and safe
// for concurrent use.
type DeltaView struct {
	base    *Frozen
	n, m    int
	version uint64
	rowIdx  []int32 // per-vertex index into rowNbr/rowWt, -1 → base row
	rowNbr  [][]int32
	rowWt   [][]float64

	scratch sync.Pool // *fscratch
}

// DeltaFrom builds a DeltaView of the graph's current state over base,
// which must be a snapshot of this graph taken at version since (as by
// Freeze). It reports false when the journal no longer covers the window,
// in which case the caller should fall back to a full Freeze.
func DeltaFrom(g *Graph, base *Frozen, since uint64) (*DeltaView, bool) {
	muts, ok := g.MutationsSince(since)
	if !ok {
		return nil, false
	}
	n := len(g.adj)
	if base.NumVertices() > n {
		return nil, false
	}
	dv := &DeltaView{
		base:    base,
		n:       n,
		m:       g.m,
		version: g.version,
		rowIdx:  make([]int32, n),
	}
	for i := range dv.rowIdx {
		dv.rowIdx[i] = -1
	}
	touch := func(u int) {
		if dv.rowIdx[u] >= 0 {
			return
		}
		row := g.adj[u]
		nbr := make([]int32, len(row))
		wt := make([]float64, len(row))
		for i, e := range row {
			nbr[i] = int32(e.to)
			wt[i] = e.w
		}
		dv.rowIdx[u] = int32(len(dv.rowNbr))
		dv.rowNbr = append(dv.rowNbr, nbr)
		dv.rowWt = append(dv.rowWt, wt)
	}
	for _, m := range muts {
		touch(m.U)
		if m.V >= 0 {
			touch(m.V)
		}
	}
	// Vertices beyond the base snapshot have no base row; they are always
	// journal-touched (MutAddVertex), but guard anyway.
	for u := base.NumVertices(); u < n; u++ {
		touch(u)
	}
	dv.scratch.New = func() interface{} {
		return &fscratch{
			heap: make([]int32, 0, n),
			pos:  make([]int32, n),
			dist: make([]float64, n),
		}
	}
	return dv, true
}

// NumVertices reports the vertex count of the view.
func (dv *DeltaView) NumVertices() int { return dv.n }

// NumEdges reports the undirected edge count of the view.
func (dv *DeltaView) NumEdges() int { return dv.m }

// Version returns the graph version this view describes.
func (dv *DeltaView) Version() uint64 { return dv.version }

// PatchedRows reports how many adjacency rows the view overrides — the
// compaction policy input: when this grows past a threshold the patch
// lookups stop paying for themselves and Compact should fold the view back
// into a flat CSR.
func (dv *DeltaView) PatchedRows() int { return len(dv.rowNbr) }

// Row returns u's neighbor IDs and weights in ascending neighbor order as
// shared slices. Callers must not mutate them.
func (dv *DeltaView) Row(u int) ([]int32, []float64) {
	if u < 0 || u >= dv.n {
		return nil, nil
	}
	if ri := dv.rowIdx[u]; ri >= 0 {
		return dv.rowNbr[ri], dv.rowWt[ri]
	}
	lo, hi := dv.base.off[u], dv.base.off[u+1]
	return dv.base.nbr[lo:hi], dv.base.wt[lo:hi]
}

// Degree returns the degree of vertex u (0 when out of range).
func (dv *DeltaView) Degree(u int) int {
	nbr, _ := dv.Row(u)
	return len(nbr)
}

// ShortestPathsInto computes single-source shortest path distances from src
// into dist (length NumVertices) over the patched view, matching Frozen's
// kernel relaxation-for-relaxation so distances — including tie-breaks —
// are identical to a fresh Freeze of the same graph.
func (dv *DeltaView) ShortestPathsInto(src int, dist []float64) {
	if len(dist) != dv.n {
		panic(fmt.Sprintf("graph: ShortestPathsInto buffer length %d, want %d", len(dist), dv.n))
	}
	s := dv.scratch.Get().(*fscratch)
	dv.dijkstra(src, dist, s)
	dv.scratch.Put(s)
}

// ShortestPathsF32Into is ShortestPathsInto with a float32 destination row;
// distances are computed in float64 and rounded once on store.
func (dv *DeltaView) ShortestPathsF32Into(src int, dist []float32) {
	if len(dist) != dv.n {
		panic(fmt.Sprintf("graph: ShortestPathsF32Into buffer length %d, want %d", len(dist), dv.n))
	}
	s := dv.scratch.Get().(*fscratch)
	dv.dijkstra(src, s.dist, s)
	for i, d := range s.dist {
		dist[i] = float32(d)
	}
	dv.scratch.Put(s)
}

// dijkstra is Frozen.dijkstra with the row indirection of the patch layer:
// one rowIdx load per settled vertex, base arrays otherwise.
func (dv *DeltaView) dijkstra(src int, dist []float64, s *fscratch) {
	for i := range dist {
		dist[i] = Inf
	}
	if src < 0 || src >= dv.n {
		return
	}
	pos := s.pos
	for i := range pos {
		pos[i] = -1
	}
	heap := s.heap[:0]
	dist[src] = 0
	heap = heapPush(heap, pos, dist, int32(src))
	for len(heap) > 0 {
		u := heap[0]
		heap = heapPopMin(heap, pos, dist)
		du := dist[u]
		nbr, wt := dv.Row(int(u))
		for i, v := range nbr {
			nd := du + wt[i]
			if nd < dist[v] {
				dist[v] = nd
				if pos[v] < 0 {
					heap = heapPush(heap, pos, dist, v)
				} else {
					heapSiftUp(heap, pos, dist, pos[v])
				}
			}
		}
	}
	s.heap = heap[:0]
}

// Compact folds the view back into a flat CSR snapshot: one pass copying
// base row spans for untouched vertices and patch rows for touched ones,
// with no re-sorting (both sides are already sorted). The result is
// edge-for-edge identical — off, nbr, wt — to a from-scratch Freeze of the
// underlying graph, which the delta property tests assert byte-for-byte.
func (dv *DeltaView) Compact() *Frozen {
	n := dv.n
	arcs := 0
	for u := 0; u < n; u++ {
		nbr, _ := dv.Row(u)
		arcs += len(nbr)
	}
	f := &Frozen{
		off: make([]int32, n+1),
		nbr: make([]int32, arcs),
		wt:  make([]float64, arcs),
		m:   dv.m,
	}
	at := int32(0)
	for u := 0; u < n; u++ {
		f.off[u] = at
		nbr, wt := dv.Row(u)
		copy(f.nbr[at:], nbr)
		copy(f.wt[at:], wt)
		at += int32(len(nbr))
	}
	f.off[n] = at
	f.scratch.New = func() interface{} {
		return &fscratch{
			heap: make([]int32, 0, n),
			pos:  make([]int32, n),
			dist: make([]float64, n),
		}
	}
	return f
}

// CSRPatch is the per-batch lookup structure RepairRow needs to reconstruct
// pre-batch adjacency from a post-batch view: removed edges indexed by both
// endpoints (with pre-batch weights) and a membership set for added edges.
// Build it once per mutation batch with NewCSRPatch and share it across all
// row repairs of that batch.
type CSRPatch struct {
	added   []Edge
	removed []Edge
	remAt   map[int32][]halfEdge
	addSet  map[int64]bool
}

// NewCSRPatch prepares a repair patch from a NetDiff result. The added and
// removed slices are retained, not copied.
func NewCSRPatch(added, removed []Edge) *CSRPatch {
	p := &CSRPatch{added: added, removed: removed}
	if len(removed) > 0 {
		p.remAt = make(map[int32][]halfEdge, 2*len(removed))
		for _, e := range removed {
			p.remAt[int32(e.U)] = append(p.remAt[int32(e.U)], halfEdge{to: e.V, w: e.W})
			p.remAt[int32(e.V)] = append(p.remAt[int32(e.V)], halfEdge{to: e.U, w: e.W})
		}
	}
	if len(added) > 0 {
		p.addSet = make(map[int64]bool, len(added))
		for _, e := range added {
			p.addSet[pairKey(e.U, e.V)] = true
		}
	}
	return p
}

// Empty reports whether the patch carries no edge changes.
func (p *CSRPatch) Empty() bool { return len(p.added) == 0 && len(p.removed) == 0 }

func pairKey(u, v int) int64 {
	if u > v {
		u, v = v, u
	}
	return int64(u)<<32 | int64(v)
}

// RepairRow updates dist — an exact Dijkstra distance row from src on the
// pre-batch graph — in place so it is exact on the post-batch graph
// described by view, using Ramalingam–Reps-style dynamic SSSP:
//
//  1. Mark the conservative affected set: vertices whose shortest-path
//     tree support may include a removed edge, found by exact-arithmetic
//     parent tests (dist[p]+w == dist[c], bit-identical to the kernel's
//     relaxation) seeded at removed edges and propagated through pre-batch
//     adjacency. Ties mark every candidate parent's subtree — a superset,
//     never a miss.
//  2. Reset marked vertices to +Inf and re-run Dijkstra from the frontier:
//     best non-affected neighbor bounds plus relaxations through added
//     edges, over post-batch adjacency.
//
// dist must have length view.NumVertices(); when the batch grew the graph
// the caller extends the row with +Inf entries first. If the affected set
// exceeds maxAffected (<= 0 means unlimited) the repair bails out before
// touching dist and reports ok=false — the caller refloods the row from
// scratch. The affected return value is the marked-set size either way.
func RepairRow(view CSRView, p *CSRPatch, src int, dist []float64, maxAffected int) (affected int, ok bool) {
	return repairRow(view, p, src, dist, maxAffected, 0)
}

// f32RelTol is the parent-test tolerance of RepairRowF32: a distance that
// round-tripped through float32 deviates from its exact value by at most
// half an ulp (2⁻²⁴ relative), so the parent identity dist[p]+w == dist[c]
// holds on rounded values only to within ~2⁻²³ of the magnitudes involved.
// Two ulps (2⁻²²) covers that with margin; widening the band only marks a
// larger affected superset, never a wrong repair.
const f32RelTol = 1.0 / (1 << 22)

// RepairRowF32 is RepairRow for a row whose values round-tripped through
// float32 (widened back to float64 by the caller): the exact-arithmetic
// parent tests are replaced by a relative-tolerance band of a few float32
// ulps, so true shortest-path-tree edges are still always marked despite
// the rounding — near-ties mark extra vertices, which the recompute phase
// makes harmless. The repaired values are exact on the post-batch graph
// relative to the rounded boundary distances, i.e. correct to a few ulps
// after the caller re-rounds them to float32.
func RepairRowF32(view CSRView, p *CSRPatch, src int, dist []float64, maxAffected int) (affected int, ok bool) {
	return repairRow(view, p, src, dist, maxAffected, f32RelTol)
}

func repairRow(view CSRView, p *CSRPatch, src int, dist []float64, maxAffected int, relTol float64) (affected int, ok bool) {
	n := view.NumVertices()
	if len(dist) != n {
		panic(fmt.Sprintf("graph: RepairRow row length %d, want %d", len(dist), n))
	}
	if p.Empty() {
		return 0, true
	}
	if maxAffected <= 0 {
		maxAffected = n
	}
	// onTree is the parent test: does the edge (sum = dist[parent]+w) support
	// d = dist[child]? Exact equality with relTol == 0 (the bit-identical
	// float64 path); a relative band otherwise. Infinities never match the
	// band (an unreachable endpoint supports nothing).
	onTree := func(sum, d float64) bool {
		if sum == d {
			return true
		}
		if relTol == 0 || sum >= Inf || d >= Inf {
			return false
		}
		diff := sum - d
		if diff < 0 {
			diff = -diff
		}
		return diff <= relTol*(sum+d) // distances are non-negative
	}
	marked := make([]bool, n)
	queue := make([]int32, 0, 16)
	mark := func(x int32) bool {
		if int(x) >= n || marked[x] || int(x) == src {
			return true
		}
		marked[x] = true
		queue = append(queue, x)
		return len(queue) <= maxAffected
	}
	// Seed: endpoints whose parent edge may have been removed. An Inf
	// endpoint was unreachable before the batch; the test below is then
	// false (Inf + w == Inf would wrongly fire), so guard explicitly.
	for _, e := range p.removed {
		if e.U >= n || e.V >= n {
			continue
		}
		du, dvv := dist[e.U], dist[e.V]
		if du < Inf && onTree(du+e.W, dvv) {
			if !mark(int32(e.V)) {
				return len(queue), false
			}
		}
		if dvv < Inf && onTree(dvv+e.W, du) {
			if !mark(int32(e.U)) {
				return len(queue), false
			}
		}
	}
	// Propagate through pre-batch adjacency: post-batch rows minus added
	// edges plus removed edges, so a marked vertex drags its entire old
	// shortest-path subtree along.
	for qi := 0; qi < len(queue); qi++ {
		x := queue[qi]
		dx := dist[x]
		if dx == Inf {
			continue
		}
		nbr, wt := view.Row(int(x))
		for i, y := range nbr {
			if p.addSet != nil && p.addSet[pairKey(int(x), int(y))] {
				continue
			}
			if !marked[y] && onTree(dx+wt[i], dist[y]) {
				if !mark(y) {
					return len(queue), false
				}
			}
		}
		for _, h := range p.remAt[x] {
			if h.to < n && !marked[h.to] && onTree(dx+h.w, dist[h.to]) {
				if !mark(int32(h.to)) {
					return len(queue), false
				}
			}
		}
	}
	affected = len(queue)

	// Recompute: affected vertices restart from +Inf; everything else is
	// already exact on the post-batch graph, so the non-affected frontier
	// plus the added edges seed an ordinary Dijkstra wave.
	for _, x := range queue {
		dist[x] = Inf
	}
	pos := make([]int32, n)
	for i := range pos {
		pos[i] = -1
	}
	heap := make([]int32, 0, len(queue)+2*len(p.added)+1)
	relax := func(v int32, nd float64) {
		if nd < dist[v] {
			dist[v] = nd
			if pos[v] < 0 {
				heap = heapPush(heap, pos, dist, v)
			} else {
				heapSiftUp(heap, pos, dist, pos[v])
			}
		}
	}
	for _, x := range queue {
		nbr, wt := view.Row(int(x))
		for i, y := range nbr {
			if !marked[y] && dist[y] < Inf {
				relax(x, dist[y]+wt[i])
			}
		}
	}
	for _, e := range p.added {
		if e.U >= n || e.V >= n {
			continue
		}
		if dist[e.U] < Inf {
			relax(int32(e.V), dist[e.U]+e.W)
		}
		if dist[e.V] < Inf {
			relax(int32(e.U), dist[e.V]+e.W)
		}
	}
	for len(heap) > 0 {
		u := heap[0]
		heap = heapPopMin(heap, pos, dist)
		du := dist[u]
		nbr, wt := view.Row(int(u))
		for i, v := range nbr {
			relax(v, du+wt[i])
		}
	}
	return affected, true
}
