package graph

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Frozen is a read-optimized compressed-sparse-row (CSR) snapshot of a
// Graph. Neighbor lists are flat []int32/[]float64 arrays sorted by
// neighbor ID, so iteration order — and therefore every tie-break taken by
// the kernels below — is deterministic and independent of the insertion
// order that built the Graph.
//
// A Frozen view never changes: mutating the source Graph after Freeze
// leaves existing views intact (they describe the pre-mutation graph) and
// invalidates the Graph's cached view, so the next Graph.Frozen() call
// re-freezes. All methods are safe for concurrent use; the per-view
// sync.Pool recycles Dijkstra scratch (heap, positions) across goroutines,
// making repeated shortest-path calls allocation-free apart from the
// returned rows.
type Frozen struct {
	off []int32   // off[u]..off[u+1] indexes nbr/wt; len n+1
	nbr []int32   // concatenated sorted neighbor lists; len 2m
	wt  []float64 // weights parallel to nbr
	m   int       // undirected edge count

	scratch sync.Pool // *fscratch
}

// fscratch is the per-goroutine working set of one Dijkstra run: an indexed
// 4-ary heap (vertex IDs keyed by the current tentative distance) plus each
// vertex's heap position. dist is used only by kernels that do not write
// into a caller-supplied buffer.
type fscratch struct {
	heap []int32
	pos  []int32 // heap index of each vertex, -1 if absent or settled
	dist []float64
}

// Freeze builds a CSR snapshot of the graph's current state. The snapshot
// is immutable; prefer Graph.Frozen() when the graph is static, which
// caches the view across calls.
func (g *Graph) Freeze() *Frozen {
	n := len(g.adj)
	if n > math.MaxInt32 {
		panic(fmt.Sprintf("graph: cannot freeze %d vertices into int32 CSR", n))
	}
	// off/nbr indices are int32 and nbr holds both directions of every edge,
	// so the directed arc count 2m must fit too — possible to exceed even
	// with n well under MaxInt32.
	if g.m > math.MaxInt32/2 {
		panic(fmt.Sprintf("graph: cannot freeze %d edges (2m arcs) into int32 CSR", g.m))
	}
	f := &Frozen{
		off: make([]int32, n+1),
		nbr: make([]int32, 2*g.m),
		wt:  make([]float64, 2*g.m),
		m:   g.m,
	}
	for u := 0; u < n; u++ {
		f.off[u+1] = f.off[u] + int32(len(g.adj[u]))
	}
	// Adjacency lists are already sorted by neighbor ID, so CSR rows are a
	// straight copy.
	for u := 0; u < n; u++ {
		lo := f.off[u]
		for i, e := range g.adj[u] {
			f.nbr[int(lo)+i] = int32(e.to)
			f.wt[int(lo)+i] = e.w
		}
	}
	f.scratch.New = func() interface{} {
		return &fscratch{
			heap: make([]int32, 0, n),
			pos:  make([]int32, n),
			dist: make([]float64, n),
		}
	}
	return f
}

// Frozen returns the cached CSR view of the graph, freezing on first use.
// Any mutation (AddVertex, AddEdge, RemoveEdge) invalidates the cache; the
// next call re-freezes. Concurrent callers may race to build the first
// view, in which case they build identical snapshots and one wins — reads
// are always consistent because views are immutable.
func (g *Graph) Frozen() *Frozen {
	if f := g.frozen.Load(); f != nil {
		return f
	}
	f := g.Freeze()
	g.frozen.Store(f)
	return f
}

// invalidateFrozen drops the cached CSR view; every mutating method calls it.
func (g *Graph) invalidateFrozen() {
	if g.frozen.Load() != nil {
		g.frozen.Store(nil)
	}
}

// frozenCache wraps the atomic pointer so Graph literals stay constructible
// elsewhere in the package without naming the atomic type.
type frozenCache = atomic.Pointer[Frozen]

// NumVertices reports the vertex count of the snapshot.
func (f *Frozen) NumVertices() int { return len(f.off) - 1 }

// NumEdges reports the undirected edge count of the snapshot.
func (f *Frozen) NumEdges() int { return f.m }

// Degree returns the degree of vertex u (0 when out of range).
func (f *Frozen) Degree(u int) int {
	if u < 0 || u >= f.NumVertices() {
		return 0
	}
	return int(f.off[u+1] - f.off[u])
}

// Row returns u's neighbor IDs and edge weights as shared slices in
// ascending neighbor order. Callers must not mutate them.
func (f *Frozen) Row(u int) ([]int32, []float64) {
	if u < 0 || u >= f.NumVertices() {
		return nil, nil
	}
	lo, hi := f.off[u], f.off[u+1]
	return f.nbr[lo:hi], f.wt[lo:hi]
}

// DegreeSequence returns the sorted multiset of vertex degrees.
func (f *Frozen) DegreeSequence() []int {
	n := f.NumVertices()
	ds := make([]int, n)
	for u := 0; u < n; u++ {
		ds[u] = int(f.off[u+1] - f.off[u])
	}
	sort.Ints(ds)
	return ds
}

// ShortestPaths computes single-source shortest path distances from src
// using Dijkstra over the CSR rows with an indexed 4-ary heap. Unreachable
// vertices get +Inf. The only allocation is the returned slice.
func (f *Frozen) ShortestPaths(src int) []float64 {
	dist := make([]float64, f.NumVertices())
	f.ShortestPathsInto(src, dist)
	return dist
}

// ShortestPathsInto is ShortestPaths writing into dist, which must have
// length NumVertices(). It performs no allocations once the scratch pool is
// warm, making it the kernel of choice for all-sources sweeps.
func (f *Frozen) ShortestPathsInto(src int, dist []float64) {
	if len(dist) != f.NumVertices() {
		panic(fmt.Sprintf("graph: ShortestPathsInto buffer length %d, want %d", len(dist), f.NumVertices()))
	}
	s := f.scratch.Get().(*fscratch)
	f.dijkstra(src, dist, nil, s)
	f.scratch.Put(s)
}

// ShortestPathsF32Into is ShortestPathsInto with a float32 destination row
// — the memory-bounded oracle's storage format. Distances are computed in
// float64 and rounded once on store, so results are deterministic.
func (f *Frozen) ShortestPathsF32Into(src int, dist []float32) {
	n := f.NumVertices()
	if len(dist) != n {
		panic(fmt.Sprintf("graph: ShortestPathsF32Into buffer length %d, want %d", len(dist), n))
	}
	s := f.scratch.Get().(*fscratch)
	f.dijkstra(src, s.dist, nil, s)
	for i, d := range s.dist {
		dist[i] = float32(d)
	}
	f.scratch.Put(s)
}

// ShortestPathTree computes distances plus the predecessor of each vertex
// on the shortest path from src. Because CSR neighbor order is sorted, the
// predecessor choice between equal-length paths is deterministic.
func (f *Frozen) ShortestPathTree(src int) (dist []float64, prev []int) {
	n := f.NumVertices()
	dist = make([]float64, n)
	prev = make([]int, n)
	s := f.scratch.Get().(*fscratch)
	f.dijkstra(src, dist, prev, s)
	f.scratch.Put(s)
	return dist, prev
}

// dijkstra runs the kernel: dist (len n) receives distances, prev (len n or
// nil) receives tree predecessors, s supplies the heap. The heap holds each
// vertex at most once (decrease-key via sift-up), so it never exceeds n and
// no stale entries are popped.
func (f *Frozen) dijkstra(src int, dist []float64, prev []int, s *fscratch) {
	n := f.NumVertices()
	for i := range dist {
		dist[i] = Inf
	}
	for i := range prev {
		prev[i] = -1
	}
	if src < 0 || src >= n {
		return
	}
	pos := s.pos
	for i := range pos {
		pos[i] = -1
	}
	heap := s.heap[:0]
	dist[src] = 0
	heap = heapPush(heap, pos, dist, int32(src))
	for len(heap) > 0 {
		u := heap[0]
		heap = heapPopMin(heap, pos, dist)
		du := dist[u]
		lo, hi := f.off[u], f.off[u+1]
		for i := lo; i < hi; i++ {
			v := f.nbr[i]
			nd := du + f.wt[i]
			if nd < dist[v] {
				dist[v] = nd
				if prev != nil {
					prev[v] = int(u)
				}
				if pos[v] < 0 {
					heap = heapPush(heap, pos, dist, v)
				} else {
					heapSiftUp(heap, pos, dist, pos[v])
				}
			}
		}
	}
	s.heap = heap[:0]
}

// The indexed 4-ary min-heap: heap holds vertex IDs ordered by dist, pos
// maps vertex → heap index. Flat arrays and direct comparisons avoid the
// interface boxing of container/heap (one allocation per push there).

func heapPush(heap []int32, pos []int32, dist []float64, v int32) []int32 {
	heap = append(heap, v)
	pos[v] = int32(len(heap) - 1)
	heapSiftUp(heap, pos, dist, pos[v])
	return heap
}

func heapPopMin(heap []int32, pos []int32, dist []float64) []int32 {
	root := heap[0]
	pos[root] = -1
	last := heap[len(heap)-1]
	heap = heap[:len(heap)-1]
	if len(heap) > 0 {
		heap[0] = last
		pos[last] = 0
		heapSiftDown(heap, pos, dist, 0)
	}
	return heap
}

func heapSiftUp(heap []int32, pos []int32, dist []float64, i int32) {
	v := heap[i]
	d := dist[v]
	for i > 0 {
		parent := (i - 1) / 4
		p := heap[parent]
		if dist[p] <= d {
			break
		}
		heap[i] = p
		pos[p] = i
		i = parent
	}
	heap[i] = v
	pos[v] = i
}

func heapSiftDown(heap []int32, pos []int32, dist []float64, i int32) {
	n := int32(len(heap))
	v := heap[i]
	d := dist[v]
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		min := first
		minD := dist[heap[first]]
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if cd := dist[heap[c]]; cd < minD {
				min, minD = c, cd
			}
		}
		if minD >= d {
			break
		}
		heap[i] = heap[min]
		pos[heap[i]] = i
		i = min
	}
	heap[i] = v
	pos[v] = i
}

// Component returns the vertices reachable from start (including start) in
// BFS discovery order. Sorted CSR rows make the order deterministic.
func (f *Frozen) Component(start int) []int {
	n := f.NumVertices()
	if start < 0 || start >= n {
		return nil
	}
	visited := make([]bool, n)
	queue := make([]int32, 1, n)
	queue[0] = int32(start)
	visited[start] = true
	order := make([]int, 0, n)
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		order = append(order, int(u))
		for i := f.off[u]; i < f.off[u+1]; i++ {
			if v := f.nbr[i]; !visited[v] {
				visited[v] = true
				queue = append(queue, v)
			}
		}
	}
	return order
}

// Connected reports whether the snapshot is connected (trivially true for
// empty and single-vertex graphs).
func (f *Frozen) Connected() bool {
	n := f.NumVertices()
	if n <= 1 {
		return true
	}
	return len(f.Component(0)) == n
}

// ComponentCount returns the number of connected components.
func (f *Frozen) ComponentCount() int {
	n := f.NumVertices()
	visited := make([]bool, n)
	stack := make([]int32, 0, n)
	count := 0
	for s := 0; s < n; s++ {
		if visited[s] {
			continue
		}
		count++
		visited[s] = true
		stack = append(stack[:0], int32(s))
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for i := f.off[u]; i < f.off[u+1]; i++ {
				if v := f.nbr[i]; !visited[v] {
					visited[v] = true
					stack = append(stack, v)
				}
			}
		}
	}
	return count
}

// HopDistance returns the unweighted hop count from u to v, or -1 if v is
// unreachable.
func (f *Frozen) HopDistance(u, v int) int {
	n := f.NumVertices()
	if u < 0 || v < 0 || u >= n || v >= n {
		return -1
	}
	if u == v {
		return 0
	}
	hops := make([]int32, n)
	for i := range hops {
		hops[i] = -1
	}
	hops[u] = 0
	queue := make([]int32, 1, n)
	queue[0] = int32(u)
	for head := 0; head < len(queue); head++ {
		x := queue[head]
		for i := f.off[x]; i < f.off[x+1]; i++ {
			y := f.nbr[i]
			if hops[y] < 0 {
				hops[y] = hops[x] + 1
				if int(y) == v {
					return int(hops[y])
				}
				queue = append(queue, y)
			}
		}
	}
	return -1
}
