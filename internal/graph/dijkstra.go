package graph

import (
	"container/heap"
	"math"
)

// Inf is the distance reported for unreachable vertices.
var Inf = math.Inf(1)

// ShortestPaths computes single-source shortest path distances from src
// using Dijkstra over the graph's frozen CSR view (cached across calls on a
// static graph; see Frozen). Unreachable vertices get +Inf. The returned
// slice has length g.NumVertices().
func (g *Graph) ShortestPaths(src int) []float64 {
	return g.Frozen().ShortestPaths(src)
}

// ShortestPathTree computes distances plus the predecessor of each vertex
// on some shortest path from src (prev[src] == -1; unreachable vertices
// also get -1). Tie-breaks between equal-cost paths follow the frozen
// view's sorted neighbor order, so the tree is deterministic regardless of
// edge insertion order.
func (g *Graph) ShortestPathTree(src int) (dist []float64, prev []int) {
	return g.Frozen().ShortestPathTree(src)
}

// ShortestPathsBaseline is the pre-CSR Dijkstra over the adjacency lists
// with a container/heap binary heap. It is retained as an independent
// reference implementation for property tests and as the "before" kernel in
// the internal/netsim warm-up benchmarks; hot paths should use
// ShortestPaths or Frozen().ShortestPathsInto.
func (g *Graph) ShortestPathsBaseline(src int) []float64 {
	dist, _ := g.shortestPaths(src, false)
	return dist
}

func (g *Graph) shortestPaths(src int, wantPrev bool) ([]float64, []int) {
	n := len(g.adj)
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = Inf
	}
	var prev []int
	if wantPrev {
		prev = make([]int, n)
		for i := range prev {
			prev[i] = -1
		}
	}
	if src < 0 || src >= n {
		return dist, prev
	}
	dist[src] = 0
	pq := &distHeap{{v: src, d: 0}}
	for pq.Len() > 0 {
		item := heap.Pop(pq).(distItem)
		if item.d > dist[item.v] {
			continue // stale entry
		}
		for _, e := range g.adj[item.v] {
			if nd := item.d + e.w; nd < dist[e.to] {
				dist[e.to] = nd
				if wantPrev {
					prev[e.to] = item.v
				}
				heap.Push(pq, distItem{v: e.to, d: nd})
			}
		}
	}
	return dist, prev
}

// PathTo reconstructs the vertex sequence src..dst from a predecessor array
// produced by ShortestPathTree(src). It returns nil if dst is unreachable.
func PathTo(prev []int, src, dst int) []int {
	if dst < 0 || dst >= len(prev) {
		return nil
	}
	if src == dst {
		return []int{src}
	}
	if prev[dst] == -1 {
		return nil
	}
	var rev []int
	for v := dst; v != -1; v = prev[v] {
		rev = append(rev, v)
		if v == src {
			break
		}
		if len(rev) > len(prev) {
			return nil // cycle guard; malformed prev
		}
	}
	if rev[len(rev)-1] != src {
		return nil
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

type distItem struct {
	v int
	d float64
}

type distHeap []distItem

func (h distHeap) Len() int            { return len(h) }
func (h distHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h distHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x interface{}) { *h = append(*h, x.(distItem)) }
func (h *distHeap) Pop() interface{} {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}

// BellmanFord computes single-source shortest paths by relaxation. It is
// O(V·E) and exists as an independent oracle for property-testing Dijkstra.
func (g *Graph) BellmanFord(src int) []float64 {
	n := len(g.adj)
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = Inf
	}
	if src < 0 || src >= n {
		return dist
	}
	dist[src] = 0
	for iter := 0; iter < n-1; iter++ {
		changed := false
		for u := range g.adj {
			if math.IsInf(dist[u], 1) {
				continue
			}
			for _, e := range g.adj[u] {
				if nd := dist[u] + e.w; nd < dist[e.to] {
					dist[e.to] = nd
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return dist
}
