package graph

import (
	"fmt"
	"io"
)

// WriteDOT emits the graph in Graphviz DOT format for visualization. label,
// if non-nil, names each vertex (default: its index); attr, if non-nil,
// returns extra DOT attributes for a vertex (e.g. `color=red`).
func (g *Graph) WriteDOT(w io.Writer, name string, label func(v int) string, attr func(v int) string) error {
	if name == "" {
		name = "G"
	}
	if _, err := fmt.Fprintf(w, "graph %q {\n", name); err != nil {
		return err
	}
	for v := 0; v < g.NumVertices(); v++ {
		l := fmt.Sprintf("%d", v)
		if label != nil {
			l = label(v)
		}
		extra := ""
		if attr != nil {
			if a := attr(v); a != "" {
				extra = ", " + a
			}
		}
		if _, err := fmt.Fprintf(w, "  n%d [label=%q%s];\n", v, l, extra); err != nil {
			return err
		}
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(w, "  n%d -- n%d [weight=%g, label=\"%.0f\"];\n", e.U, e.V, e.W, e.W); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
