//go:build !race

package graph

// raceDetectorEnabled reports whether this test binary was built with the
// race detector, whose instrumentation allocates behind the scenes and
// makes exact allocation pins meaningless.
const raceDetectorEnabled = false
