// Package graph implements the weighted undirected graphs that underpin both
// the physical-network substrate and the logical overlays of the PROP
// reproduction.
//
// The representation is a compact adjacency list keyed by dense integer
// vertex IDs. Edge weights are float64 latencies in milliseconds. The
// package provides the primitives the paper's analysis leans on:
// single-source shortest paths (Dijkstra), connectivity checks (Theorem 1,
// connectivity persistence), degree sequences (PROP-O degree preservation),
// and isomorphism-under-relabeling verification (Theorem 2).
//
// Key types: Graph (mutable sorted adjacency lists, right for construction
// and edge churn) and Frozen (the immutable CSR traversal view). DESIGN.md
// §7 explains the freeze-after-construction contract and the kernel design.
package graph

import (
	"fmt"
	"sort"
)

// halfEdge is one directed half of an undirected edge: the neighbor it
// leads to and the edge weight.
type halfEdge struct {
	to int
	w  float64
}

// Graph is a weighted undirected multigraph-free graph over vertices
// 0..NumVertices-1. The zero value is an empty graph; grow it with
// AddVertex/AddEdge.
//
// Adjacency lists are kept sorted by neighbor ID, so every traversal
// (VisitNeighbors, Edges, the search kernels) sees neighbors in ascending
// order — deterministic regardless of edge insertion order. Observability
// leans on this: deterministic traversal keeps Dijkstra relaxation counts,
// and with them the oracle's metric counters, a pure function of the seed
// (DESIGN.md §8). Lookups cost O(log deg), mutations O(deg); P2P overlay
// degrees are small constants, and the hot paths iterate rather than probe.
type Graph struct {
	adj [][]halfEdge // adj[u], sorted by neighbor ID
	m   int          // number of edges

	// frozen caches the CSR view built by Frozen(); every mutation clears
	// it. Atomic so concurrent readers of a static graph never race the
	// lazy build.
	frozen frozenCache

	// version counts effective mutations; the delta layer (delta.go) keys
	// its views and journals off it. A mutation that changes nothing (e.g.
	// re-adding an edge with its current weight) does not bump it.
	version uint64

	// journal is the bounded mutation log enabled by TrackMutations. It
	// holds the mutations for versions journalAt+1..version; overflow
	// clears it and advances journalAt, forcing consumers to resync.
	journal    []Mutation
	journalCap int
	journalAt  uint64
}

// New returns a graph with n isolated vertices.
func New(n int) *Graph {
	return &Graph{adj: make([][]halfEdge, n)}
}

// findHalf locates v in the sorted list, returning its index and whether it
// is present; absent, the index is v's insertion point.
func findHalf(list []halfEdge, v int) (int, bool) {
	i := sort.Search(len(list), func(k int) bool { return list[k].to >= v })
	return i, i < len(list) && list[i].to == v
}

// setHalf inserts or overwrites the half-edge to v, keeping the list
// sorted. It reports whether the edge already existed.
func setHalf(list []halfEdge, v int, w float64) ([]halfEdge, bool) {
	i, ok := findHalf(list, v)
	if ok {
		list[i].w = w
		return list, true
	}
	list = append(list, halfEdge{})
	copy(list[i+1:], list[i:])
	list[i] = halfEdge{to: v, w: w}
	return list, false
}

// dropHalf removes the half-edge to v, reporting whether it existed.
func dropHalf(list []halfEdge, v int) ([]halfEdge, bool) {
	i, ok := findHalf(list, v)
	if !ok {
		return list, false
	}
	copy(list[i:], list[i+1:])
	return list[:len(list)-1], true
}

// NumVertices reports the number of vertices.
func (g *Graph) NumVertices() int { return len(g.adj) }

// NumEdges reports the number of undirected edges.
func (g *Graph) NumEdges() int { return g.m }

// AddVertex appends a new isolated vertex and returns its ID.
func (g *Graph) AddVertex() int {
	g.adj = append(g.adj, nil)
	g.noteMutation(Mutation{Kind: MutAddVertex, U: len(g.adj) - 1, V: -1})
	g.invalidateFrozen()
	return len(g.adj) - 1
}

// AddEdge inserts the undirected edge {u,v} with weight w. Self-loops are
// rejected. Re-adding an existing edge overwrites its weight and is not
// counted twice.
func (g *Graph) AddEdge(u, v int, w float64) error {
	if u == v {
		return fmt.Errorf("graph: self-loop on vertex %d", u)
	}
	if err := g.check(u); err != nil {
		return err
	}
	if err := g.check(v); err != nil {
		return err
	}
	if w < 0 {
		return fmt.Errorf("graph: negative weight %v on edge {%d,%d}", w, u, v)
	}
	oldW, existed := g.Weight(u, v)
	if existed && oldW == w {
		// No-op overwrite: the graph is unchanged, so neither the version
		// nor the cached CSR view needs to move.
		return nil
	}
	g.adj[u], _ = setHalf(g.adj[u], v, w)
	g.adj[v], _ = setHalf(g.adj[v], u, w)
	if existed {
		g.noteMutation(Mutation{Kind: MutSetWeight, U: u, V: v, W: w, OldW: oldW})
	} else {
		g.m++
		g.noteMutation(Mutation{Kind: MutAddEdge, U: u, V: v, W: w})
	}
	g.invalidateFrozen()
	return nil
}

// MustAddEdge is AddEdge that panics on error; for construction code whose
// inputs are known valid.
func (g *Graph) MustAddEdge(u, v int, w float64) {
	if err := g.AddEdge(u, v, w); err != nil {
		panic(err)
	}
}

// RemoveEdge deletes the undirected edge {u,v}. It reports whether the edge
// existed.
func (g *Graph) RemoveEdge(u, v int) bool {
	if u < 0 || v < 0 || u >= len(g.adj) || v >= len(g.adj) {
		return false
	}
	oldW, existed := g.Weight(u, v)
	if !existed {
		return false
	}
	g.adj[u], _ = dropHalf(g.adj[u], v)
	g.adj[v], _ = dropHalf(g.adj[v], u)
	g.m--
	g.noteMutation(Mutation{Kind: MutRemoveEdge, U: u, V: v, OldW: oldW})
	g.invalidateFrozen()
	return true
}

// HasEdge reports whether the edge {u,v} exists.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || u >= len(g.adj) {
		return false
	}
	_, ok := findHalf(g.adj[u], v)
	return ok
}

// Weight returns the weight of edge {u,v} and whether it exists.
func (g *Graph) Weight(u, v int) (float64, bool) {
	if u < 0 || u >= len(g.adj) {
		return 0, false
	}
	i, ok := findHalf(g.adj[u], v)
	if !ok {
		return 0, false
	}
	return g.adj[u][i].w, true
}

// Degree returns the degree of vertex u.
func (g *Graph) Degree(u int) int {
	if u < 0 || u >= len(g.adj) {
		return 0
	}
	return len(g.adj[u])
}

// Neighbors returns the neighbor IDs of u in ascending order. The slice is
// freshly allocated; callers may mutate it.
func (g *Graph) Neighbors(u int) []int {
	if u < 0 || u >= len(g.adj) {
		return nil
	}
	out := make([]int, 0, len(g.adj[u]))
	for _, e := range g.adj[u] {
		out = append(out, e.to)
	}
	return out
}

// VisitNeighbors calls f for every neighbor of u, in ascending neighbor
// order, with the edge weight. Iteration stops early if f returns false.
// The deterministic order is load-bearing: search kernels built on it
// (overlay flooding, the baseline Dijkstras) settle equal-distance vertices
// identically on every run, which the byte-deterministic metrics streams
// rely on (DESIGN.md §8).
func (g *Graph) VisitNeighbors(u int, f func(v int, w float64) bool) {
	if u < 0 || u >= len(g.adj) {
		return
	}
	for _, e := range g.adj[u] {
		if !f(e.to, e.w) {
			return
		}
	}
}

// Edge is an undirected edge with U < V, plus its weight.
type Edge struct {
	U, V int
	W    float64
}

// Edges returns every edge exactly once, sorted by (U, V). The adjacency
// lists are already sorted, so this is a single ordered sweep.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.m)
	for u := range g.adj {
		for _, e := range g.adj[u] {
			if u < e.to {
				out = append(out, Edge{U: u, V: e.to, W: e.w})
			}
		}
	}
	return out
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := New(len(g.adj))
	c.m = g.m
	for u, nbrs := range g.adj {
		c.adj[u] = append([]halfEdge(nil), nbrs...)
	}
	return c
}

// DegreeSequence returns the sorted multiset of vertex degrees. Two graphs
// related by a PROP-O exchange must have identical degree sequences.
func (g *Graph) DegreeSequence() []int {
	ds := make([]int, len(g.adj))
	for u := range g.adj {
		ds[u] = len(g.adj[u])
	}
	sort.Ints(ds)
	return ds
}

// MinDegree returns the minimum vertex degree δ(G), or 0 for an empty graph.
// The paper sets the default PROP-O exchange size m = δ(G).
func (g *Graph) MinDegree() int {
	if len(g.adj) == 0 {
		return 0
	}
	min := len(g.adj)
	for u := range g.adj {
		if d := len(g.adj[u]); d < min {
			min = d
		}
	}
	return min
}

// AverageDegree returns the mean vertex degree (2m/n), or 0 for an empty
// graph.
func (g *Graph) AverageDegree() float64 {
	if len(g.adj) == 0 {
		return 0
	}
	return 2 * float64(g.m) / float64(len(g.adj))
}

// TotalWeight returns the sum of all edge weights.
func (g *Graph) TotalWeight() float64 {
	total := 0.0
	for u, nbrs := range g.adj {
		for _, e := range nbrs {
			if u < e.to {
				total += e.w
			}
		}
	}
	return total
}

// MeanEdgeWeight returns the average edge weight, or 0 if there are no
// edges. In the physical network this is the "average physical link
// latency" denominator of the paper's stretch metric.
func (g *Graph) MeanEdgeWeight() float64 {
	if g.m == 0 {
		return 0
	}
	return g.TotalWeight() / float64(g.m)
}

func (g *Graph) check(u int) error {
	if u < 0 || u >= len(g.adj) {
		return fmt.Errorf("graph: vertex %d out of range [0,%d)", u, len(g.adj))
	}
	return nil
}

// Connected reports whether the graph is connected (true for the empty and
// single-vertex graphs).
func (g *Graph) Connected() bool {
	n := len(g.adj)
	if n <= 1 {
		return true
	}
	return len(g.Component(0)) == n
}

// Component returns the vertices reachable from start (including start),
// in BFS discovery order.
func (g *Graph) Component(start int) []int {
	if start < 0 || start >= len(g.adj) {
		return nil
	}
	visited := make([]bool, len(g.adj))
	queue := []int{start}
	visited[start] = true
	order := make([]int, 0, len(g.adj))
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		for _, e := range g.adj[u] {
			if !visited[e.to] {
				visited[e.to] = true
				queue = append(queue, e.to)
			}
		}
	}
	return order
}

// ComponentCount returns the number of connected components.
func (g *Graph) ComponentCount() int {
	visited := make([]bool, len(g.adj))
	count := 0
	for s := range g.adj {
		if visited[s] {
			continue
		}
		count++
		stack := []int{s}
		visited[s] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, e := range g.adj[u] {
				if !visited[e.to] {
					visited[e.to] = true
					stack = append(stack, e.to)
				}
			}
		}
	}
	return count
}

// HopDistance returns the unweighted hop count from u to v, or -1 if v is
// unreachable.
func (g *Graph) HopDistance(u, v int) int {
	if u < 0 || v < 0 || u >= len(g.adj) || v >= len(g.adj) {
		return -1
	}
	if u == v {
		return 0
	}
	dist := make([]int, len(g.adj))
	for i := range dist {
		dist[i] = -1
	}
	dist[u] = 0
	queue := []int{u}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		for _, e := range g.adj[x] {
			if dist[e.to] < 0 {
				dist[e.to] = dist[x] + 1
				if e.to == v {
					return dist[e.to]
				}
				queue = append(queue, e.to)
			}
		}
	}
	return -1
}

// IsomorphicUnderMapping verifies that applying the vertex relabeling phi to
// g yields exactly h: phi must be a bijection on [0,n) and xy ∈ E(g) iff
// phi(x)phi(y) ∈ E(h), with equal weights. This is the executable form of
// the paper's Theorem 2 (PROP-G preserves the overlay up to isomorphism).
func IsomorphicUnderMapping(g, h *Graph, phi []int) error {
	n := g.NumVertices()
	if h.NumVertices() != n {
		return fmt.Errorf("graph: vertex counts differ: %d vs %d", n, h.NumVertices())
	}
	if len(phi) != n {
		return fmt.Errorf("graph: mapping length %d, want %d", len(phi), n)
	}
	seen := make([]bool, n)
	for x, y := range phi {
		if y < 0 || y >= n {
			return fmt.Errorf("graph: phi(%d)=%d out of range", x, y)
		}
		if seen[y] {
			return fmt.Errorf("graph: phi is not injective at image %d", y)
		}
		seen[y] = true
	}
	if g.NumEdges() != h.NumEdges() {
		return fmt.Errorf("graph: edge counts differ: %d vs %d", g.NumEdges(), h.NumEdges())
	}
	for u := range g.adj {
		for _, e := range g.adj[u] {
			if u > e.to {
				continue
			}
			hw, ok := h.Weight(phi[u], phi[e.to])
			if !ok {
				return fmt.Errorf("graph: edge {%d,%d} has no image {%d,%d}", u, e.to, phi[u], phi[e.to])
			}
			if hw != e.w {
				return fmt.Errorf("graph: edge {%d,%d} weight %v maps to weight %v", u, e.to, e.w, hw)
			}
		}
	}
	return nil
}
