// Package graph implements the weighted undirected graphs that underpin both
// the physical-network substrate and the logical overlays of the PROP
// reproduction.
//
// The representation is a compact adjacency list keyed by dense integer
// vertex IDs. Edge weights are float64 latencies in milliseconds. The
// package provides the primitives the paper's analysis leans on:
// single-source shortest paths (Dijkstra), connectivity checks (Theorem 1,
// connectivity persistence), degree sequences (PROP-O degree preservation),
// and isomorphism-under-relabeling verification (Theorem 2).
package graph

import (
	"fmt"
	"sort"
)

// Graph is a weighted undirected multigraph-free graph over vertices
// 0..NumVertices-1. The zero value is an empty graph; grow it with
// AddVertex/AddEdge.
type Graph struct {
	adj []map[int]float64 // adj[u][v] = weight of edge {u,v}
	m   int               // number of edges

	// frozen caches the CSR view built by Frozen(); every mutation clears
	// it. Atomic so concurrent readers of a static graph never race the
	// lazy build.
	frozen frozenCache
}

// New returns a graph with n isolated vertices.
func New(n int) *Graph {
	g := &Graph{adj: make([]map[int]float64, n)}
	for i := range g.adj {
		g.adj[i] = make(map[int]float64)
	}
	return g
}

// NumVertices reports the number of vertices.
func (g *Graph) NumVertices() int { return len(g.adj) }

// NumEdges reports the number of undirected edges.
func (g *Graph) NumEdges() int { return g.m }

// AddVertex appends a new isolated vertex and returns its ID.
func (g *Graph) AddVertex() int {
	g.adj = append(g.adj, make(map[int]float64))
	g.invalidateFrozen()
	return len(g.adj) - 1
}

// AddEdge inserts the undirected edge {u,v} with weight w. Self-loops are
// rejected. Re-adding an existing edge overwrites its weight and is not
// counted twice.
func (g *Graph) AddEdge(u, v int, w float64) error {
	if u == v {
		return fmt.Errorf("graph: self-loop on vertex %d", u)
	}
	if err := g.check(u); err != nil {
		return err
	}
	if err := g.check(v); err != nil {
		return err
	}
	if w < 0 {
		return fmt.Errorf("graph: negative weight %v on edge {%d,%d}", w, u, v)
	}
	if _, exists := g.adj[u][v]; !exists {
		g.m++
	}
	g.adj[u][v] = w
	g.adj[v][u] = w
	g.invalidateFrozen()
	return nil
}

// MustAddEdge is AddEdge that panics on error; for construction code whose
// inputs are known valid.
func (g *Graph) MustAddEdge(u, v int, w float64) {
	if err := g.AddEdge(u, v, w); err != nil {
		panic(err)
	}
}

// RemoveEdge deletes the undirected edge {u,v}. It reports whether the edge
// existed.
func (g *Graph) RemoveEdge(u, v int) bool {
	if u < 0 || v < 0 || u >= len(g.adj) || v >= len(g.adj) {
		return false
	}
	if _, ok := g.adj[u][v]; !ok {
		return false
	}
	delete(g.adj[u], v)
	delete(g.adj[v], u)
	g.m--
	g.invalidateFrozen()
	return true
}

// HasEdge reports whether the edge {u,v} exists.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || u >= len(g.adj) {
		return false
	}
	_, ok := g.adj[u][v]
	return ok
}

// Weight returns the weight of edge {u,v} and whether it exists.
func (g *Graph) Weight(u, v int) (float64, bool) {
	if u < 0 || u >= len(g.adj) {
		return 0, false
	}
	w, ok := g.adj[u][v]
	return w, ok
}

// Degree returns the degree of vertex u.
func (g *Graph) Degree(u int) int {
	if u < 0 || u >= len(g.adj) {
		return 0
	}
	return len(g.adj[u])
}

// Neighbors returns the neighbor IDs of u in ascending order. The slice is
// freshly allocated; callers may mutate it.
func (g *Graph) Neighbors(u int) []int {
	if u < 0 || u >= len(g.adj) {
		return nil
	}
	out := make([]int, 0, len(g.adj[u]))
	for v := range g.adj[u] {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// VisitNeighbors calls f for every neighbor of u (in unspecified order) with
// the edge weight. Iteration stops early if f returns false.
func (g *Graph) VisitNeighbors(u int, f func(v int, w float64) bool) {
	if u < 0 || u >= len(g.adj) {
		return
	}
	for v, w := range g.adj[u] {
		if !f(v, w) {
			return
		}
	}
}

// Edge is an undirected edge with U < V, plus its weight.
type Edge struct {
	U, V int
	W    float64
}

// Edges returns every edge exactly once, sorted by (U, V).
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.m)
	for u := range g.adj {
		for v, w := range g.adj[u] {
			if u < v {
				out = append(out, Edge{U: u, V: v, W: w})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := New(len(g.adj))
	c.m = g.m
	for u, nbrs := range g.adj {
		for v, w := range nbrs {
			c.adj[u][v] = w
		}
	}
	return c
}

// DegreeSequence returns the sorted multiset of vertex degrees. Two graphs
// related by a PROP-O exchange must have identical degree sequences.
func (g *Graph) DegreeSequence() []int {
	ds := make([]int, len(g.adj))
	for u := range g.adj {
		ds[u] = len(g.adj[u])
	}
	sort.Ints(ds)
	return ds
}

// MinDegree returns the minimum vertex degree δ(G), or 0 for an empty graph.
// The paper sets the default PROP-O exchange size m = δ(G).
func (g *Graph) MinDegree() int {
	if len(g.adj) == 0 {
		return 0
	}
	min := len(g.adj)
	for u := range g.adj {
		if d := len(g.adj[u]); d < min {
			min = d
		}
	}
	return min
}

// AverageDegree returns the mean vertex degree (2m/n), or 0 for an empty
// graph.
func (g *Graph) AverageDegree() float64 {
	if len(g.adj) == 0 {
		return 0
	}
	return 2 * float64(g.m) / float64(len(g.adj))
}

// TotalWeight returns the sum of all edge weights.
func (g *Graph) TotalWeight() float64 {
	total := 0.0
	for u, nbrs := range g.adj {
		for v, w := range nbrs {
			if u < v {
				total += w
			}
		}
	}
	return total
}

// MeanEdgeWeight returns the average edge weight, or 0 if there are no
// edges. In the physical network this is the "average physical link
// latency" denominator of the paper's stretch metric.
func (g *Graph) MeanEdgeWeight() float64 {
	if g.m == 0 {
		return 0
	}
	return g.TotalWeight() / float64(g.m)
}

func (g *Graph) check(u int) error {
	if u < 0 || u >= len(g.adj) {
		return fmt.Errorf("graph: vertex %d out of range [0,%d)", u, len(g.adj))
	}
	return nil
}

// Connected reports whether the graph is connected (true for the empty and
// single-vertex graphs).
func (g *Graph) Connected() bool {
	n := len(g.adj)
	if n <= 1 {
		return true
	}
	return len(g.Component(0)) == n
}

// Component returns the vertices reachable from start (including start),
// in BFS discovery order.
func (g *Graph) Component(start int) []int {
	if start < 0 || start >= len(g.adj) {
		return nil
	}
	visited := make([]bool, len(g.adj))
	queue := []int{start}
	visited[start] = true
	order := make([]int, 0, len(g.adj))
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		for v := range g.adj[u] {
			if !visited[v] {
				visited[v] = true
				queue = append(queue, v)
			}
		}
	}
	return order
}

// ComponentCount returns the number of connected components.
func (g *Graph) ComponentCount() int {
	visited := make([]bool, len(g.adj))
	count := 0
	for s := range g.adj {
		if visited[s] {
			continue
		}
		count++
		stack := []int{s}
		visited[s] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for v := range g.adj[u] {
				if !visited[v] {
					visited[v] = true
					stack = append(stack, v)
				}
			}
		}
	}
	return count
}

// HopDistance returns the unweighted hop count from u to v, or -1 if v is
// unreachable.
func (g *Graph) HopDistance(u, v int) int {
	if u < 0 || v < 0 || u >= len(g.adj) || v >= len(g.adj) {
		return -1
	}
	if u == v {
		return 0
	}
	dist := make([]int, len(g.adj))
	for i := range dist {
		dist[i] = -1
	}
	dist[u] = 0
	queue := []int{u}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		for y := range g.adj[x] {
			if dist[y] < 0 {
				dist[y] = dist[x] + 1
				if y == v {
					return dist[y]
				}
				queue = append(queue, y)
			}
		}
	}
	return -1
}

// IsomorphicUnderMapping verifies that applying the vertex relabeling phi to
// g yields exactly h: phi must be a bijection on [0,n) and xy ∈ E(g) iff
// phi(x)phi(y) ∈ E(h), with equal weights. This is the executable form of
// the paper's Theorem 2 (PROP-G preserves the overlay up to isomorphism).
func IsomorphicUnderMapping(g, h *Graph, phi []int) error {
	n := g.NumVertices()
	if h.NumVertices() != n {
		return fmt.Errorf("graph: vertex counts differ: %d vs %d", n, h.NumVertices())
	}
	if len(phi) != n {
		return fmt.Errorf("graph: mapping length %d, want %d", len(phi), n)
	}
	seen := make([]bool, n)
	for x, y := range phi {
		if y < 0 || y >= n {
			return fmt.Errorf("graph: phi(%d)=%d out of range", x, y)
		}
		if seen[y] {
			return fmt.Errorf("graph: phi is not injective at image %d", y)
		}
		seen[y] = true
	}
	if g.NumEdges() != h.NumEdges() {
		return fmt.Errorf("graph: edge counts differ: %d vs %d", g.NumEdges(), h.NumEdges())
	}
	for u := range g.adj {
		for v, w := range g.adj[u] {
			if u > v {
				continue
			}
			hw, ok := h.Weight(phi[u], phi[v])
			if !ok {
				return fmt.Errorf("graph: edge {%d,%d} has no image {%d,%d}", u, v, phi[u], phi[v])
			}
			if hw != w {
				return fmt.Errorf("graph: edge {%d,%d} weight %v maps to weight %v", u, v, w, hw)
			}
		}
	}
	return nil
}
