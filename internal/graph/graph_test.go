package graph

import (
	"fmt"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func buildTriangle(t *testing.T) *Graph {
	t.Helper()
	g := New(3)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 2)
	g.MustAddEdge(0, 2, 5)
	return g
}

func TestAddRemoveEdge(t *testing.T) {
	g := New(4)
	if err := g.AddEdge(0, 1, 1.5); err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("edge not symmetric")
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
	// Overwrite keeps the count.
	if err := g.AddEdge(1, 0, 2.5); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges after overwrite = %d, want 1", g.NumEdges())
	}
	if w, _ := g.Weight(0, 1); w != 2.5 {
		t.Fatalf("weight = %v, want 2.5", w)
	}
	if !g.RemoveEdge(0, 1) {
		t.Fatal("RemoveEdge returned false for existing edge")
	}
	if g.RemoveEdge(0, 1) {
		t.Fatal("RemoveEdge returned true for missing edge")
	}
	if g.NumEdges() != 0 {
		t.Fatalf("NumEdges after remove = %d, want 0", g.NumEdges())
	}
}

func TestAddEdgeErrors(t *testing.T) {
	g := New(2)
	if err := g.AddEdge(0, 0, 1); err == nil {
		t.Error("self-loop accepted")
	}
	if err := g.AddEdge(0, 5, 1); err == nil {
		t.Error("out-of-range vertex accepted")
	}
	if err := g.AddEdge(-1, 0, 1); err == nil {
		t.Error("negative vertex accepted")
	}
	if err := g.AddEdge(0, 1, -2); err == nil {
		t.Error("negative weight accepted")
	}
}

func TestAddVertex(t *testing.T) {
	g := New(0)
	a := g.AddVertex()
	b := g.AddVertex()
	if a != 0 || b != 1 {
		t.Fatalf("AddVertex ids = %d,%d", a, b)
	}
	g.MustAddEdge(a, b, 3)
	if g.Degree(a) != 1 {
		t.Fatalf("degree = %d", g.Degree(a))
	}
}

func TestNeighborsSortedAndCopied(t *testing.T) {
	g := New(5)
	g.MustAddEdge(0, 4, 1)
	g.MustAddEdge(0, 2, 1)
	g.MustAddEdge(0, 3, 1)
	nbrs := g.Neighbors(0)
	want := []int{2, 3, 4}
	for i, v := range want {
		if nbrs[i] != v {
			t.Fatalf("Neighbors(0) = %v, want %v", nbrs, want)
		}
	}
	nbrs[0] = 99
	if g.HasEdge(0, 99) {
		t.Fatal("mutating returned slice affected the graph")
	}
	if g.Neighbors(-1) != nil || g.Neighbors(100) != nil {
		t.Fatal("out-of-range Neighbors should be nil")
	}
}

func TestVisitNeighborsEarlyStop(t *testing.T) {
	g := buildTriangle(t)
	calls := 0
	g.VisitNeighbors(0, func(v int, w float64) bool {
		calls++
		return false
	})
	if calls != 1 {
		t.Fatalf("early stop ignored: %d calls", calls)
	}
}

func TestEdgesEnumeration(t *testing.T) {
	g := buildTriangle(t)
	edges := g.Edges()
	if len(edges) != 3 {
		t.Fatalf("Edges len = %d", len(edges))
	}
	want := []Edge{{0, 1, 1}, {0, 2, 5}, {1, 2, 2}}
	for i, e := range want {
		if edges[i] != e {
			t.Fatalf("Edges[%d] = %+v, want %+v", i, edges[i], e)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	g := buildTriangle(t)
	c := g.Clone()
	c.RemoveEdge(0, 1)
	if !g.HasEdge(0, 1) {
		t.Fatal("clone shares storage with original")
	}
	if c.NumEdges() != 2 || g.NumEdges() != 3 {
		t.Fatalf("edge counts: clone %d, orig %d", c.NumEdges(), g.NumEdges())
	}
}

func TestDegreeStats(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(0, 2, 1)
	g.MustAddEdge(0, 3, 1)
	ds := g.DegreeSequence()
	want := []int{1, 1, 1, 3}
	for i := range want {
		if ds[i] != want[i] {
			t.Fatalf("DegreeSequence = %v", ds)
		}
	}
	if g.MinDegree() != 1 {
		t.Fatalf("MinDegree = %d", g.MinDegree())
	}
	if ad := g.AverageDegree(); ad != 1.5 {
		t.Fatalf("AverageDegree = %v", ad)
	}
	empty := New(0)
	if empty.MinDegree() != 0 || empty.AverageDegree() != 0 {
		t.Fatal("empty graph stats nonzero")
	}
}

func TestWeightAggregates(t *testing.T) {
	g := buildTriangle(t)
	if tw := g.TotalWeight(); tw != 8 {
		t.Fatalf("TotalWeight = %v", tw)
	}
	if mw := g.MeanEdgeWeight(); math.Abs(mw-8.0/3) > 1e-12 {
		t.Fatalf("MeanEdgeWeight = %v", mw)
	}
	if New(3).MeanEdgeWeight() != 0 {
		t.Fatal("edgeless MeanEdgeWeight nonzero")
	}
}

func TestConnectivity(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(2, 3, 1)
	if g.Connected() {
		t.Fatal("disconnected graph reported connected")
	}
	if cc := g.ComponentCount(); cc != 2 {
		t.Fatalf("ComponentCount = %d", cc)
	}
	g.MustAddEdge(1, 2, 1)
	if !g.Connected() {
		t.Fatal("connected graph reported disconnected")
	}
	if !New(0).Connected() || !New(1).Connected() {
		t.Fatal("trivial graphs should be connected")
	}
}

func TestComponent(t *testing.T) {
	g := New(5)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	comp := g.Component(0)
	if len(comp) != 3 {
		t.Fatalf("Component(0) = %v", comp)
	}
	if comp[0] != 0 {
		t.Fatalf("BFS order should start at source: %v", comp)
	}
	if g.Component(-1) != nil {
		t.Fatal("invalid start should return nil")
	}
}

func TestHopDistance(t *testing.T) {
	g := New(5)
	g.MustAddEdge(0, 1, 10)
	g.MustAddEdge(1, 2, 10)
	g.MustAddEdge(2, 3, 10)
	if d := g.HopDistance(0, 3); d != 3 {
		t.Fatalf("HopDistance(0,3) = %d", d)
	}
	if d := g.HopDistance(0, 0); d != 0 {
		t.Fatalf("HopDistance(0,0) = %d", d)
	}
	if d := g.HopDistance(0, 4); d != -1 {
		t.Fatalf("HopDistance to isolated vertex = %d", d)
	}
	if d := g.HopDistance(-1, 2); d != -1 {
		t.Fatalf("HopDistance invalid src = %d", d)
	}
}

func TestShortestPathsTriangle(t *testing.T) {
	g := buildTriangle(t)
	dist := g.ShortestPaths(0)
	want := []float64{0, 1, 3} // 0->1 = 1, 0->1->2 = 3 beats direct 5
	for i := range want {
		if dist[i] != want[i] {
			t.Fatalf("dist = %v, want %v", dist, want)
		}
	}
}

func TestShortestPathsUnreachable(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1, 1)
	dist := g.ShortestPaths(0)
	if !math.IsInf(dist[2], 1) {
		t.Fatalf("unreachable distance = %v, want +Inf", dist[2])
	}
	distBad := g.ShortestPaths(99)
	for _, d := range distBad {
		if !math.IsInf(d, 1) {
			t.Fatal("invalid source should yield all-Inf distances")
		}
	}
}

func TestShortestPathTreeAndPathTo(t *testing.T) {
	g := buildTriangle(t)
	dist, prev := g.ShortestPathTree(0)
	if dist[2] != 3 {
		t.Fatalf("dist[2] = %v", dist[2])
	}
	path := PathTo(prev, 0, 2)
	want := []int{0, 1, 2}
	if len(path) != len(want) {
		t.Fatalf("path = %v", path)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
	if p := PathTo(prev, 0, 0); len(p) != 1 || p[0] != 0 {
		t.Fatalf("trivial path = %v", p)
	}
	// Unreachable.
	h := New(3)
	h.MustAddEdge(0, 1, 1)
	_, hp := h.ShortestPathTree(0)
	if PathTo(hp, 0, 2) != nil {
		t.Fatal("unreachable PathTo should be nil")
	}
	if PathTo(hp, 0, 17) != nil {
		t.Fatal("out-of-range PathTo should be nil")
	}
}

// randomConnectedGraph builds a connected random graph for property tests.
func randomConnectedGraph(r *rng.Rand, n, extraEdges int) *Graph {
	g := New(n)
	perm := r.Perm(n)
	for i := 1; i < n; i++ {
		// Random spanning tree: attach perm[i] to an earlier vertex.
		j := perm[r.Intn(i)]
		w := 1 + r.Float64()*99
		g.MustAddEdge(perm[i], j, w)
	}
	for k := 0; k < extraEdges; k++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v && !g.HasEdge(u, v) {
			g.MustAddEdge(u, v, 1+r.Float64()*99)
		}
	}
	return g
}

func TestDijkstraAgreesWithBellmanFord(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 5 + r.Intn(40)
		g := randomConnectedGraph(r, n, n)
		src := r.Intn(n)
		d1 := g.ShortestPaths(src)
		d2 := g.BellmanFord(src)
		for i := range d1 {
			if math.Abs(d1[i]-d2[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDijkstraTriangleInequality(t *testing.T) {
	r := rng.New(99)
	g := randomConnectedGraph(r, 60, 120)
	src := 0
	dist := g.ShortestPaths(src)
	for _, e := range g.Edges() {
		if dist[e.V] > dist[e.U]+e.W+1e-9 || dist[e.U] > dist[e.V]+e.W+1e-9 {
			t.Fatalf("triangle inequality violated on edge %+v: d[u]=%v d[v]=%v", e, dist[e.U], dist[e.V])
		}
	}
}

func TestIsomorphicUnderMappingIdentity(t *testing.T) {
	g := buildTriangle(t)
	phi := []int{0, 1, 2}
	if err := IsomorphicUnderMapping(g, g, phi); err != nil {
		t.Fatalf("identity mapping rejected: %v", err)
	}
}

func TestIsomorphicUnderMappingSwap(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 2)
	g.MustAddEdge(2, 3, 3)
	// h = g with vertices 1 and 2 swapped.
	h := New(4)
	h.MustAddEdge(0, 2, 1)
	h.MustAddEdge(2, 1, 2)
	h.MustAddEdge(1, 3, 3)
	phi := []int{0, 2, 1, 3}
	if err := IsomorphicUnderMapping(g, h, phi); err != nil {
		t.Fatalf("valid swap mapping rejected: %v", err)
	}
	// Wrong mapping must be rejected.
	if err := IsomorphicUnderMapping(g, h, []int{0, 1, 2, 3}); err == nil {
		t.Fatal("identity mapping wrongly accepted for swapped graph")
	}
}

func TestIsomorphicUnderMappingErrors(t *testing.T) {
	g := buildTriangle(t)
	h := New(2)
	if err := IsomorphicUnderMapping(g, h, []int{0, 1, 2}); err == nil {
		t.Error("size mismatch accepted")
	}
	h3 := buildTriangle(t)
	if err := IsomorphicUnderMapping(g, h3, []int{0, 1}); err == nil {
		t.Error("short mapping accepted")
	}
	if err := IsomorphicUnderMapping(g, h3, []int{0, 0, 1}); err == nil {
		t.Error("non-injective mapping accepted")
	}
	if err := IsomorphicUnderMapping(g, h3, []int{0, 1, 9}); err == nil {
		t.Error("out-of-range mapping accepted")
	}
	weighted := buildTriangle(t)
	weighted.MustAddEdge(0, 1, 42) // change weight
	if err := IsomorphicUnderMapping(g, weighted, []int{0, 1, 2}); err == nil {
		t.Error("weight mismatch accepted")
	}
}

func BenchmarkDijkstra1k(b *testing.B) {
	r := rng.New(1)
	g := randomConnectedGraph(r, 1000, 4000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.ShortestPaths(i % 1000)
	}
}

func TestWriteDOT(t *testing.T) {
	g := buildTriangle(t)
	var buf strings.Builder
	err := g.WriteDOT(&buf, "demo",
		func(v int) string { return fmt.Sprintf("node-%d", v) },
		func(v int) string {
			if v == 0 {
				return "color=red"
			}
			return ""
		})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`graph "demo"`, `label="node-0"`, "color=red", "n0 -- n1", "n1 -- n2", "}"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q:\n%s", want, out)
		}
	}
	// Defaults: empty name and nil callbacks.
	buf.Reset()
	if err := g.WriteDOT(&buf, "", nil, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `graph "G"`) {
		t.Error("default name missing")
	}
}
