package graph

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestVersionAndJournal(t *testing.T) {
	g := New(4)
	if g.Version() != 0 {
		t.Fatalf("fresh graph version = %d, want 0", g.Version())
	}
	g.TrackMutations(16)
	v0 := g.Version()
	g.MustAddEdge(0, 1, 5)
	g.MustAddEdge(1, 2, 7)
	if g.Version() != v0+2 {
		t.Fatalf("version after 2 adds = %d, want %d", g.Version(), v0+2)
	}
	// No-op overwrite: same weight must not bump the version or journal.
	g.MustAddEdge(0, 1, 5)
	if g.Version() != v0+2 {
		t.Fatalf("no-op overwrite bumped version to %d", g.Version())
	}
	// Weight change is recorded as MutSetWeight with the old weight.
	g.MustAddEdge(0, 1, 9)
	g.RemoveEdge(1, 2)
	muts, ok := g.MutationsSince(v0)
	if !ok {
		t.Fatal("MutationsSince(v0) not ok")
	}
	want := []Mutation{
		{Kind: MutAddEdge, U: 0, V: 1, W: 5},
		{Kind: MutAddEdge, U: 1, V: 2, W: 7},
		{Kind: MutSetWeight, U: 0, V: 1, W: 9, OldW: 5},
		{Kind: MutRemoveEdge, U: 1, V: 2, OldW: 7},
	}
	if len(muts) != len(want) {
		t.Fatalf("journal length %d, want %d", len(muts), len(want))
	}
	for i := range want {
		if muts[i] != want[i] {
			t.Fatalf("journal[%d] = %+v, want %+v", i, muts[i], want[i])
		}
	}
	if _, ok := g.MutationsSince(g.Version()); !ok {
		t.Fatal("MutationsSince(current) must be ok")
	}
	if _, ok := g.MutationsSince(g.Version() + 1); ok {
		t.Fatal("MutationsSince(future) must not be ok")
	}
}

func TestJournalOverflow(t *testing.T) {
	g := New(8)
	g.TrackMutations(3)
	v0 := g.Version()
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(2, 3, 1)
	g.MustAddEdge(3, 4, 1) // overflows: journal clears and re-anchors
	if _, ok := g.MutationsSince(v0); ok {
		t.Fatal("MutationsSince across an overflow must fail")
	}
	// After the overflow the journal restarts; a consumer syncing now works.
	v1 := g.Version()
	g.MustAddEdge(4, 5, 1)
	muts, ok := g.MutationsSince(v1)
	if !ok || len(muts) != 1 {
		t.Fatalf("post-overflow MutationsSince = (%d muts, ok=%v), want (1, true)", len(muts), ok)
	}
}

func TestNetDiffCancellation(t *testing.T) {
	g := New(6)
	g.TrackMutations(64)
	g.MustAddEdge(0, 1, 5) // persists
	g.MustAddEdge(2, 3, 7) // removed below → cancels
	g.RemoveEdge(2, 3)
	v0 := g.Version()
	_ = v0

	muts, _ := g.MutationsSince(0)
	added, removed := NetDiff(muts)
	if len(added) != 1 || added[0] != (Edge{U: 0, V: 1, W: 5}) {
		t.Fatalf("added = %+v, want [{0 1 5}]", added)
	}
	if len(removed) != 0 {
		t.Fatalf("removed = %+v, want empty", removed)
	}

	// Remove then re-add at the same weight cancels; different weight is a
	// remove+add pair.
	g2 := New(4)
	g2.MustAddEdge(0, 1, 5)
	g2.MustAddEdge(1, 2, 5)
	g2.TrackMutations(64)
	v2 := g2.Version()
	g2.RemoveEdge(0, 1)
	g2.MustAddEdge(0, 1, 5)
	g2.MustAddEdge(1, 2, 9)
	muts2, ok2 := g2.MutationsSince(v2)
	if !ok2 {
		t.Fatal("MutationsSince(v2) not ok")
	}
	added2, removed2 := NetDiff(muts2)
	if len(added2) != 1 || added2[0] != (Edge{U: 1, V: 2, W: 9}) {
		t.Fatalf("added2 = %+v, want [{1 2 9}]", added2)
	}
	if len(removed2) != 1 || removed2[0] != (Edge{U: 1, V: 2, W: 5}) {
		t.Fatalf("removed2 = %+v, want [{1 2 5}]", removed2)
	}
}

// mutateRandomly applies a random batch of edge mutations (and occasional
// vertex adds) that keeps the graph connected-ish; returns a description
// count for logging.
func mutateRandomly(g *Graph, ops int, r *rng.Rand) {
	for i := 0; i < ops; i++ {
		n := g.NumVertices()
		switch r.Intn(5) {
		case 0: // add vertex with one edge
			v := g.AddVertex()
			g.MustAddEdge(r.Intn(v), v, float64(1+r.Intn(40)))
		case 1: // remove a random edge (keep at least a few)
			edges := g.Edges()
			if len(edges) > n {
				e := edges[r.Intn(len(edges))]
				g.RemoveEdge(e.U, e.V)
			}
		case 2: // reweight an existing edge
			edges := g.Edges()
			if len(edges) > 0 {
				e := edges[r.Intn(len(edges))]
				g.MustAddEdge(e.U, e.V, float64(1+r.Intn(40)))
			}
		default: // add an edge
			u, v := r.Intn(n), r.Intn(n)
			if u != v && !g.HasEdge(u, v) {
				g.MustAddEdge(u, v, float64(1+r.Intn(40)))
			}
		}
	}
}

func frozenEqual(t *testing.T, a, b *Frozen) {
	t.Helper()
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		t.Fatalf("shape mismatch: (%d,%d) vs (%d,%d)", a.NumVertices(), a.NumEdges(), b.NumVertices(), b.NumEdges())
	}
	for i := range a.off {
		if a.off[i] != b.off[i] {
			t.Fatalf("off[%d] = %d vs %d", i, a.off[i], b.off[i])
		}
	}
	for i := range a.nbr {
		if a.nbr[i] != b.nbr[i] || a.wt[i] != b.wt[i] {
			t.Fatalf("arc %d = (%d,%v) vs (%d,%v)", i, a.nbr[i], a.wt[i], b.nbr[i], b.wt[i])
		}
	}
}

// TestDeltaViewMatchesFreeze is the satellite-3 property: after random
// mutation batches, a DeltaView answers shortest paths identically to a
// fresh Freeze, and Compact is edge-for-edge identical to Freeze.
func TestDeltaViewMatchesFreeze(t *testing.T) {
	r := rng.New(41)
	for trial := 0; trial < 8; trial++ {
		g := randomConnectedGraph(r, 60+r.Intn(40), 80)
		g.TrackMutations(4096)
		base := g.Freeze()
		baseV := g.Version()
		for batch := 0; batch < 4; batch++ {
			mutateRandomly(g, 1+r.Intn(12), r)
			dv, ok := DeltaFrom(g, base, baseV)
			if !ok {
				t.Fatal("DeltaFrom failed within journal capacity")
			}
			fresh := g.Freeze()
			frozenEqual(t, dv.Compact(), fresh)
			n := g.NumVertices()
			got := make([]float64, n)
			want := make([]float64, n)
			for k := 0; k < 5; k++ {
				src := r.Intn(n)
				dv.ShortestPathsInto(src, got)
				fresh.ShortestPathsInto(src, want)
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("trial %d batch %d src %d: dist[%d] = %v, want %v", trial, batch, src, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestRepairRowMatchesFresh drives random mutation batches and asserts the
// in-place row repair reproduces a from-scratch Dijkstra bit-for-bit.
func TestRepairRowMatchesFresh(t *testing.T) {
	r := rng.New(42)
	for trial := 0; trial < 10; trial++ {
		g := randomConnectedGraph(r, 50+r.Intn(50), 60)
		g.TrackMutations(4096)
		base := g.Frozen()
		baseV := g.Version()

		// Exact pre-batch rows for a handful of sources.
		srcs := make([]int, 6)
		rows := make([][]float64, len(srcs))
		for i := range srcs {
			srcs[i] = r.Intn(g.NumVertices())
			rows[i] = base.ShortestPaths(srcs[i])
		}

		mutateRandomly(g, 1+r.Intn(10), r)
		muts, ok := g.MutationsSince(baseV)
		if !ok {
			t.Fatal("journal overflow within capacity")
		}
		added, removed := NetDiff(muts)
		patch := NewCSRPatch(added, removed)
		dv, ok := DeltaFrom(g, base, baseV)
		if !ok {
			t.Fatal("DeltaFrom failed")
		}
		n := g.NumVertices()
		want := make([]float64, n)
		for i, src := range srcs {
			row := rows[i]
			for len(row) < n { // graph may have grown
				row = append(row, math.Inf(1))
			}
			affected, ok := RepairRow(dv, patch, src, row, 0)
			if !ok {
				t.Fatalf("trial %d src %d: unbounded repair bailed", trial, src)
			}
			dv.ShortestPathsInto(src, want)
			for j := range want {
				if row[j] != want[j] {
					t.Fatalf("trial %d src %d (affected %d): dist[%d] = %v, want %v",
						trial, src, affected, j, row[j], want[j])
				}
			}
		}
	}
}

// TestRepairRowBailout checks the maxAffected guard: a bailed repair leaves
// the row untouched.
func TestRepairRowBailout(t *testing.T) {
	r := rng.New(7)
	g := randomConnectedGraph(r, 80, 40)
	g.TrackMutations(1024)
	base := g.Frozen()
	baseV := g.Version()
	src := 0
	row := base.ShortestPaths(src)
	orig := append([]float64(nil), row...)

	// Remove a spanning-tree-ish edge adjacent to the source so a large
	// subtree is affected.
	nbr, _ := base.Row(src)
	g.RemoveEdge(src, int(nbr[0]))
	muts, _ := g.MutationsSince(baseV)
	added, removed := NetDiff(muts)
	patch := NewCSRPatch(added, removed)
	dv, _ := DeltaFrom(g, base, baseV)

	if affected, ok := RepairRow(dv, patch, src, row, 1); !ok {
		if affected < 1 {
			t.Fatalf("bailout reported %d affected", affected)
		}
		for i := range row {
			if row[i] != orig[i] {
				t.Fatalf("bailed repair mutated row at %d", i)
			}
		}
	}
	// Unbounded repair on the same row must now succeed and match fresh.
	if _, ok := RepairRow(dv, patch, src, row, 0); !ok {
		t.Fatal("unbounded repair bailed")
	}
	want := make([]float64, g.NumVertices())
	dv.ShortestPathsInto(src, want)
	for i := range want {
		if row[i] != want[i] {
			t.Fatalf("dist[%d] = %v, want %v", i, row[i], want[i])
		}
	}
}
