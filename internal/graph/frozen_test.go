package graph

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// TestFrozenShortestPathsAgree property-checks the CSR Dijkstra against the
// two independent map-based oracles (the retained baseline binary-heap
// Dijkstra and Bellman-Ford) on randomized weighted graphs.
func TestFrozenShortestPathsAgree(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 5 + r.Intn(40)
		g := randomConnectedGraph(r, n, n)
		src := r.Intn(n)
		csr := g.Frozen().ShortestPaths(src)
		base := g.ShortestPathsBaseline(src)
		bf := g.BellmanFord(src)
		for i := range csr {
			if math.Abs(csr[i]-base[i]) > 1e-9 || math.Abs(csr[i]-bf[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestFrozenBFSAndDegreesAgree cross-checks every frozen kernel that has a
// map-based twin: component membership, connectivity, component counts,
// degree sequences, per-vertex degrees, and hop distances.
func TestFrozenBFSAndDegreesAgree(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 3 + r.Intn(30)
		// Possibly disconnected: random edges only.
		g := New(n)
		for k := 0; k < n; k++ {
			u, v := r.Intn(n), r.Intn(n)
			if u != v && !g.HasEdge(u, v) {
				g.MustAddEdge(u, v, 1+r.Float64()*9)
			}
		}
		fz := g.Frozen()
		if fz.Connected() != g.Connected() {
			return false
		}
		if fz.ComponentCount() != g.ComponentCount() {
			return false
		}
		ds1, ds2 := fz.DegreeSequence(), g.DegreeSequence()
		for i := range ds1 {
			if ds1[i] != ds2[i] {
				return false
			}
		}
		for u := 0; u < n; u++ {
			if fz.Degree(u) != g.Degree(u) {
				return false
			}
			// Same reachable set (order may differ between map and CSR BFS).
			inComp := map[int]bool{}
			for _, v := range g.Component(u) {
				inComp[v] = true
			}
			comp := fz.Component(u)
			if len(comp) != len(inComp) {
				return false
			}
			for _, v := range comp {
				if !inComp[v] {
					return false
				}
			}
		}
		for k := 0; k < 10; k++ {
			u, v := r.Intn(n), r.Intn(n)
			if fz.HopDistance(u, v) != g.HopDistance(u, v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestFrozenDeterministicAcrossInsertionOrders is the determinism
// guarantee: the same edge set inserted in different orders must freeze to
// byte-identical CSR arrays, identical BFS orders, and an identical
// shortest-path tree (tie-breaks included).
func TestFrozenDeterministicAcrossInsertionOrders(t *testing.T) {
	r := rng.New(42)
	n := 40
	g1 := randomConnectedGraph(r, n, 2*n)
	edges := g1.Edges()

	for trial := 0; trial < 5; trial++ {
		shuffled := append([]Edge(nil), edges...)
		r.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		g2 := New(n)
		for _, e := range shuffled {
			g2.MustAddEdge(e.U, e.V, e.W)
		}
		f1, f2 := g1.Frozen(), g2.Frozen()
		for u := 0; u < n; u++ {
			n1, w1 := f1.Row(u)
			n2, w2 := f2.Row(u)
			if len(n1) != len(n2) {
				t.Fatalf("trial %d: vertex %d row lengths differ", trial, u)
			}
			for i := range n1 {
				if n1[i] != n2[i] || w1[i] != w2[i] {
					t.Fatalf("trial %d: vertex %d row differs at %d: (%d,%v) vs (%d,%v)",
						trial, u, i, n1[i], w1[i], n2[i], w2[i])
				}
			}
		}
		c1, c2 := f1.Component(0), f2.Component(0)
		for i := range c1 {
			if c1[i] != c2[i] {
				t.Fatalf("trial %d: BFS orders diverge at %d: %d vs %d", trial, i, c1[i], c2[i])
			}
		}
		for src := 0; src < n; src += 7 {
			d1, p1 := g1.ShortestPathTree(src)
			d2, p2 := g2.ShortestPathTree(src)
			for v := range p1 {
				if p1[v] != p2[v] || d1[v] != d2[v] {
					t.Fatalf("trial %d: tree from %d differs at %d: prev %d/%d dist %v/%v",
						trial, src, v, p1[v], p2[v], d1[v], d2[v])
				}
			}
		}
	}
}

// TestFrozenCacheInvalidation: Frozen() caches until mutation, and a stale
// handle keeps describing the pre-mutation graph.
func TestFrozenCacheInvalidation(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1, 1)
	f1 := g.Frozen()
	if g.Frozen() != f1 {
		t.Fatal("Frozen() did not cache on a static graph")
	}
	g.MustAddEdge(1, 2, 2)
	f2 := g.Frozen()
	if f2 == f1 {
		t.Fatal("AddEdge did not invalidate the frozen view")
	}
	if f1.NumEdges() != 1 || f2.NumEdges() != 2 {
		t.Fatalf("edge counts: stale %d (want 1), fresh %d (want 2)", f1.NumEdges(), f2.NumEdges())
	}
	g.RemoveEdge(0, 1)
	if g.Frozen() == f2 {
		t.Fatal("RemoveEdge did not invalidate the frozen view")
	}
	g.AddVertex()
	f3 := g.Frozen()
	if f3.NumVertices() != 4 {
		t.Fatalf("post-AddVertex view has %d vertices, want 4", f3.NumVertices())
	}
}

// TestFrozenEdgeCases covers empty graphs, bad sources, and buffer
// validation.
func TestFrozenEdgeCases(t *testing.T) {
	empty := New(0).Frozen()
	if !empty.Connected() || empty.ComponentCount() != 0 || empty.NumVertices() != 0 {
		t.Fatal("empty frozen graph misbehaves")
	}
	single := New(1).Frozen()
	if !single.Connected() || len(single.Component(0)) != 1 {
		t.Fatal("single-vertex frozen graph misbehaves")
	}
	g := New(3)
	g.MustAddEdge(0, 1, 1)
	fz := g.Frozen()
	for _, d := range fz.ShortestPaths(-1) {
		if !math.IsInf(d, 1) {
			t.Fatal("invalid source should yield all-Inf distances")
		}
	}
	if !math.IsInf(fz.ShortestPaths(0)[2], 1) {
		t.Fatal("unreachable vertex should be +Inf")
	}
	if nbr, wt := fz.Row(99); nbr != nil || wt != nil {
		t.Fatal("out-of-range Row should be nil")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("ShortestPathsInto accepted a short buffer")
			}
		}()
		fz.ShortestPathsInto(0, make([]float64, 1))
	}()
}

// TestFrozenF32MatchesF64 checks the float32 row kernel agrees with the
// float64 kernel up to one rounding.
func TestFrozenF32MatchesF64(t *testing.T) {
	r := rng.New(7)
	g := randomConnectedGraph(r, 50, 100)
	fz := g.Frozen()
	d64 := make([]float64, 50)
	d32 := make([]float32, 50)
	for src := 0; src < 50; src += 5 {
		fz.ShortestPathsInto(src, d64)
		fz.ShortestPathsF32Into(src, d32)
		for i := range d64 {
			if float32(d64[i]) != d32[i] {
				t.Fatalf("src %d dst %d: f32 row %v != rounded f64 %v", src, i, d32[i], float32(d64[i]))
			}
		}
	}
}

// TestShortestPathsIntoAllocationFree pins the tentpole claim: after the
// scratch pool is warm, a full Dijkstra into a caller buffer performs zero
// allocations.
func TestShortestPathsIntoAllocationFree(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("race instrumentation allocates; the zero-alloc pin only holds unraced")
	}
	r := rng.New(3)
	g := randomConnectedGraph(r, 500, 2000)
	fz := g.Frozen()
	buf := make([]float64, 500)
	fz.ShortestPathsInto(0, buf) // warm the pool
	allocs := testing.AllocsPerRun(20, func() {
		fz.ShortestPathsInto(1, buf)
	})
	if allocs > 0 {
		t.Fatalf("ShortestPathsInto allocated %.1f objects/run after warm-up, want 0", allocs)
	}
}

func BenchmarkFrozenDijkstra1k(b *testing.B) {
	r := rng.New(1)
	g := randomConnectedGraph(r, 1000, 4000)
	fz := g.Frozen()
	buf := make([]float64, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fz.ShortestPathsInto(i%1000, buf)
	}
}

func BenchmarkBaselineDijkstra1k(b *testing.B) {
	r := rng.New(1)
	g := randomConnectedGraph(r, 1000, 4000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.ShortestPathsBaseline(i % 1000)
	}
}

func BenchmarkFreeze1k(b *testing.B) {
	r := rng.New(1)
	g := randomConnectedGraph(r, 1000, 4000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Freeze()
	}
}
