package graph

import (
	"testing"
)

// FuzzGraphOps drives a random add/remove sequence and checks structural
// invariants after every operation: the edge counter matches reality, the
// degree sum equals 2m, and symmetry always holds.
func FuzzGraphOps(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{255, 254, 253, 1, 2, 3, 9, 9})
	f.Fuzz(func(t *testing.T, ops []byte) {
		const n = 12
		g := New(n)
		for i := 0; i+2 < len(ops); i += 3 {
			u := int(ops[i]) % n
			v := int(ops[i+1]) % n
			switch ops[i+2] % 3 {
			case 0:
				if u != v {
					g.MustAddEdge(u, v, float64(ops[i+2])+1)
				}
			case 1:
				g.RemoveEdge(u, v)
			case 2:
				g.HasEdge(u, v)
			}
			// Invariants.
			degSum := 0
			edges := 0
			for x := 0; x < n; x++ {
				degSum += g.Degree(x)
				for _, y := range g.Neighbors(x) {
					if !g.HasEdge(y, x) {
						t.Fatalf("asymmetric edge %d-%d", x, y)
					}
					if x < y {
						edges++
					}
				}
			}
			if degSum != 2*g.NumEdges() {
				t.Fatalf("degree sum %d != 2m %d", degSum, 2*g.NumEdges())
			}
			if edges != g.NumEdges() {
				t.Fatalf("edge counter %d != enumerated %d", g.NumEdges(), edges)
			}
		}
		// Component counts partition the vertices.
		total := 0
		seen := make([]bool, n)
		for s := 0; s < n; s++ {
			if !seen[s] {
				comp := g.Component(s)
				total += len(comp)
				for _, v := range comp {
					seen[v] = true
				}
			}
		}
		if total != n {
			t.Fatalf("components cover %d of %d vertices", total, n)
		}
	})
}

// FuzzDijkstraMatchesBellmanFord cross-checks the two shortest-path
// implementations on fuzz-shaped graphs.
func FuzzDijkstraMatchesBellmanFord(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Fuzz(func(t *testing.T, raw []byte) {
		const n = 10
		g := New(n)
		for i := 0; i+2 < len(raw); i += 3 {
			u := int(raw[i]) % n
			v := int(raw[i+1]) % n
			if u != v {
				g.MustAddEdge(u, v, float64(raw[i+2]%100)+1)
			}
		}
		for src := 0; src < n; src++ {
			d1 := g.ShortestPaths(src)
			d2 := g.BellmanFord(src)
			for i := range d1 {
				if d1[i] != d2[i] {
					t.Fatalf("src %d dst %d: dijkstra %v != bellman-ford %v", src, i, d1[i], d2[i])
				}
			}
		}
	})
}
