package chaos

import (
	"reflect"
	"strings"
	"testing"
)

// testConfig is the soak shape CI runs: small enough to finish fast, big
// enough that ≥20% of the agents die and recover and a partition window
// opens mid-run.
func testConfig(seed uint64) Config {
	return Config{
		N:            18,
		Seed:         seed,
		Steps:        8,
		StepMS:       80,
		PressureMsgs: 1024,
	}
}

func TestChaosSoakDeterministicLog(t *testing.T) {
	cfg := testConfig(7)
	first, err := Run(cfg)
	if err != nil {
		t.Fatalf("run 1: %v", err)
	}
	if first.AuditErr != nil {
		t.Fatalf("run 1 audit: %v\nlog:\n%s", first.AuditErr, first.Log)
	}
	second, err := Run(cfg)
	if err != nil {
		t.Fatalf("run 2: %v", err)
	}
	if second.AuditErr != nil {
		t.Fatalf("run 2 audit: %v\nlog:\n%s", second.AuditErr, second.Log)
	}
	if first.Log != second.Log {
		t.Fatalf("chaos log not byte-deterministic per seed:\n--- run 1 ---\n%s--- run 2 ---\n%s",
			first.Log, second.Log)
	}

	// The acceptance floor: ≥20% of agents killed, all recovered, one
	// partition window executed.
	minKills := (cfg.N*20 + 99) / 100
	if first.Kills < minKills {
		t.Fatalf("only %d/%d agents killed, want >= %d (20%%)", first.Kills, cfg.N, minKills)
	}
	if first.Recovers != first.Kills {
		t.Fatalf("%d kills but %d recovers — schedule must bring every victim back", first.Kills, first.Recovers)
	}
	for _, marker := range []string{"partition-open", "partition-close", "pressure", "final audit ok"} {
		if !strings.Contains(first.Log, marker) {
			t.Fatalf("log lacks %q:\n%s", marker, first.Log)
		}
	}
	if strings.Contains(first.Log, "FAIL") {
		t.Fatalf("log contains a failed audit:\n%s", first.Log)
	}
	t.Logf("chaos summary: %s", first.Summary)
}

func TestChaosSeedsDiverge(t *testing.T) {
	a := buildSchedule(func() Config { c := testConfig(1); c.fill(); return c }())
	b := buildSchedule(func() Config { c := testConfig(2); c.fill(); return c }())
	if reflect.DeepEqual(a, b) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestScheduleProperties(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		cfg := testConfig(seed)
		cfg.fill()
		s := buildSchedule(cfg)

		killStep := map[int]int{}
		recStep := map[int]int{}
		iso := map[int]bool{}
		for _, h := range s.isolated {
			iso[h] = true
		}
		for _, ev := range s.events {
			if ev.step < 1 || ev.step > cfg.Steps {
				t.Fatalf("seed %d: event %+v outside schedule", seed, ev)
			}
			switch ev.kind {
			case "kill":
				if _, dup := killStep[ev.host]; dup {
					t.Fatalf("seed %d: host %d killed twice", seed, ev.host)
				}
				killStep[ev.host] = ev.step
				if iso[ev.host] {
					t.Fatalf("seed %d: host %d both killed and isolated", seed, ev.host)
				}
			case "recover":
				recStep[ev.host] = ev.step
			}
		}
		if len(killStep) != s.kills {
			t.Fatalf("seed %d: %d distinct victims, schedule says %d", seed, len(killStep), s.kills)
		}
		for h, k := range killStep {
			r, ok := recStep[h]
			if !ok {
				t.Fatalf("seed %d: host %d killed but never recovered", seed, h)
			}
			if r <= k {
				t.Fatalf("seed %d: host %d recovers at step %d, killed at %d", seed, h, r, k)
			}
		}
		if len(s.isolated) == 0 {
			t.Fatalf("seed %d: empty partition set", seed)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{N: 4},
		{Steps: 3},
		{KillFrac: 0.9},
		{PartitionFrac: 0.8},
		{PartitionStep: 100},
		{PressureStep: 100},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d validated: %+v", i, cfg)
		}
	}
	good := Config{}
	if err := good.Validate(); err != nil {
		t.Errorf("zero config (all defaults) rejected: %v", err)
	}
}
