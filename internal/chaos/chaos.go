// Package chaos is the deterministic chaos harness for the live PROP
// runtime: a seed-derived schedule of crash-stops, recoveries, one network
// partition window, and a mailbox-pressure blast, driven over the loopback
// transport against a full propnode.Runtime, with the invariant audits
// (slot↔host bijection, connectivity among live agents, no duplicate slots)
// evaluated at every quiesce point.
//
// Determinism contract: everything the schedule decides — who dies when, who
// recovers when, which hosts the partition isolates, who absorbs the
// pressure blast — is computed from Config.Seed before any concurrency
// starts, and the run's Log records exactly that schedule plus each quiesce
// audit's verdict. Two executions with the same Config therefore produce
// byte-identical logs (the CI chaos job pins this by diffing a double run);
// per-message faults reuse faults.DeliverStateless link hashes, so even the
// loss/dup pattern is a pure function of the seed. What wall-clock timing
// does perturb — exchange counts, eviction counts, how many corpses each
// repair pass still found — lands in the human-oriented Summary, never in
// the Log.
//
// Key types: Config, Result, Run. See DESIGN.md §10 and EXPERIMENTS.md
// ("Chaos schedule knobs").
package chaos

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/overlay"
	"repro/internal/propnode"
	"repro/internal/rng"
	"repro/internal/transport"
)

// pressureHost is the host ID of the harness's own blast endpoint — far
// outside the agent ID space so it can never collide with a runtime host.
const pressureHost = 1 << 20

// Config parameterizes one chaos run. Zero values select the defaults noted
// on each field; Validate reports combinations that cannot work.
type Config struct {
	// N is the number of live agents (default 24).
	N int
	// Seed derives the entire schedule and all runtime randomness.
	Seed uint64
	// Steps is the schedule length (default 12). Each step lasts StepMS and
	// ends at a quiesce point: repair, reconnect, settle, audit.
	Steps int
	// StepMS is the wall-clock step length in milliseconds (default 150).
	StepMS float64
	// KillFrac is the fraction of the initial agents crash-stopped over the
	// run (default 0.25; the acceptance floor is 0.20). Every victim also
	// recovers before the run ends.
	KillFrac float64
	// PartitionStep is the step at which the partition window opens
	// (default Steps/3). The window spans PartitionSteps steps.
	PartitionStep int
	// PartitionSteps is the partition window length in steps (default 2).
	PartitionSteps int
	// PartitionFrac is the fraction of hosts isolated on the far side of the
	// cut (default 0.3).
	PartitionFrac float64
	// PressureStep is the step at which the harness blasts an agent's
	// bounded mailbox (default 2*Steps/3).
	PressureStep int
	// PressureMsgs is the blast size in messages (default 4096).
	PressureMsgs int
	// Queue is the loopback per-endpoint mailbox bound (default 256 — small
	// enough that the pressure blast visibly sheds load).
	Queue int
	// LossProb and DupProb are the stateless per-message fault rates on
	// every link (defaults 0.01 each).
	LossProb, DupProb float64
	// Policy selects the exchange protocol under test (default PROP-G).
	Policy core.Policy
}

func (c *Config) fill() {
	if c.N == 0 {
		c.N = 24
	}
	if c.Steps == 0 {
		c.Steps = 12
	}
	if c.StepMS == 0 {
		c.StepMS = 150
	}
	if c.KillFrac == 0 {
		c.KillFrac = 0.25
	}
	if c.PartitionStep == 0 {
		c.PartitionStep = c.Steps / 3
	}
	if c.PartitionSteps == 0 {
		c.PartitionSteps = 2
	}
	if c.PartitionFrac == 0 {
		c.PartitionFrac = 0.3
	}
	if c.PressureStep == 0 {
		c.PressureStep = 2 * c.Steps / 3
	}
	if c.PressureMsgs == 0 {
		c.PressureMsgs = 4096
	}
	if c.Queue == 0 {
		c.Queue = 256
	}
	if c.LossProb == 0 {
		c.LossProb = 0.01
	}
	if c.DupProb == 0 {
		c.DupProb = 0.01
	}
}

// Validate reports the first configuration error (after defaulting).
func (c Config) Validate() error {
	c.fill()
	switch {
	case c.N < 8:
		return fmt.Errorf("chaos: N = %d, need >= 8 to survive the schedule", c.N)
	case c.Steps < 6:
		return fmt.Errorf("chaos: Steps = %d, need >= 6 (kill, recover, partition, pressure all need room)", c.Steps)
	case c.KillFrac < 0 || c.KillFrac > 0.5:
		return fmt.Errorf("chaos: KillFrac = %v out of [0, 0.5]", c.KillFrac)
	case c.PartitionFrac < 0 || c.PartitionFrac > 0.5:
		return fmt.Errorf("chaos: PartitionFrac = %v out of [0, 0.5]", c.PartitionFrac)
	case c.PartitionStep < 1 || c.PartitionStep+c.PartitionSteps > c.Steps:
		return fmt.Errorf("chaos: partition window [%d,%d) outside schedule [1,%d)",
			c.PartitionStep, c.PartitionStep+c.PartitionSteps, c.Steps)
	case c.PressureStep < 1 || c.PressureStep >= c.Steps:
		return fmt.Errorf("chaos: PressureStep = %d outside schedule [1,%d)", c.PressureStep, c.Steps)
	}
	return nil
}

// event is one scheduled action, resolved entirely at schedule-build time.
type event struct {
	step int
	kind string // "kill" | "recover" | "partition-open" | "partition-close" | "pressure"
	host int    // victim host (kill/recover/pressure), -1 otherwise
}

// schedule is the precomputed plan: pure function of the Config.
type schedule struct {
	events   []event
	isolated []int // hosts on the far side of the partition, sorted
	kills    int
}

// buildSchedule derives the full plan from the seed. Victims and steps are
// chosen with a dedicated RNG before any agent runs, so the plan — and
// therefore the deterministic log — cannot be perturbed by scheduling.
func buildSchedule(cfg Config) schedule {
	r := rng.New(cfg.Seed ^ 0xc4a05)
	hosts := make([]int, cfg.N)
	for i := range hosts {
		hosts[i] = i
	}
	r.Shuffle(len(hosts), func(i, j int) { hosts[i], hosts[j] = hosts[j], hosts[i] })

	kills := int(float64(cfg.N)*cfg.KillFrac + 0.5)
	if kills < 1 {
		kills = 1
	}
	var s schedule
	s.kills = kills
	// Kills land in [1, Steps-3]; each recovery 2..3 steps later, capped at
	// the final step — so every corpse is back before the run ends and the
	// final audit sees the full population.
	for i := 0; i < kills; i++ {
		h := hosts[i]
		kill := 1 + r.Intn(cfg.Steps-3)
		rec := kill + 2 + r.Intn(2)
		if rec > cfg.Steps-1 {
			rec = cfg.Steps - 1
		}
		s.events = append(s.events, event{step: kill, kind: "kill", host: h})
		s.events = append(s.events, event{step: rec, kind: "recover", host: h})
	}
	// The partition isolates hosts disjoint from the kill set, so a victim
	// is never simultaneously dead and unreachable (either alone is chaos
	// enough; together they make the log depend on repair timing).
	nIso := int(float64(cfg.N)*cfg.PartitionFrac + 0.5)
	if nIso < 1 {
		nIso = 1
	}
	if max := cfg.N - kills; nIso > max {
		nIso = max
	}
	s.isolated = append([]int(nil), hosts[kills:kills+nIso]...)
	sort.Ints(s.isolated)
	s.events = append(s.events,
		event{step: cfg.PartitionStep, kind: "partition-open", host: -1},
		event{step: cfg.PartitionStep + cfg.PartitionSteps, kind: "partition-close", host: -1},
		event{step: cfg.PressureStep, kind: "pressure", host: hosts[cfg.N-1]})

	sort.SliceStable(s.events, func(i, j int) bool { return s.events[i].step < s.events[j].step })
	return s
}

// Result is one chaos run's outcome.
type Result struct {
	// Log is the deterministic run record: the schedule as executed plus
	// each quiesce audit's verdict. Byte-identical across runs of the same
	// Config.
	Log string
	// Summary is the nondeterministic epilogue — counters whose exact values
	// depend on wall-clock interleaving (exchanges, evictions, overflows).
	Summary string
	// Kills, Recovers report the executed schedule size.
	Kills, Recovers int
	// AuditErr is the first quiesce-point audit failure, nil on a clean run.
	AuditErr error
}

// Run executes one chaos schedule and reports the outcome. The only error
// return is a harness failure (bad config, a runtime that refused to start);
// invariant violations land in Result.AuditErr so the caller still gets the
// log that led up to them.
func Run(cfg Config) (*Result, error) {
	cfg.fill()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sched := buildSchedule(cfg)

	// The partition is enforced by the transport's fault gate: its window is
	// wall-clock ms since loopback creation, so the loopback is created at
	// the step clock's origin and the step loop sleeps on absolute deadlines
	// from the same instant.
	iso := make(map[int]bool, len(sched.isolated))
	for _, h := range sched.isolated {
		iso[h] = true
	}
	inj, err := faults.NewInjector(faults.Config{
		Seed:             cfg.Seed,
		LossProb:         cfg.LossProb,
		DupProb:          cfg.DupProb,
		PartitionStartMS: float64(cfg.PartitionStep) * cfg.StepMS,
		PartitionStopMS:  float64(cfg.PartitionStep+cfg.PartitionSteps) * cfg.StepMS,
		Isolated:         iso,
	})
	if err != nil {
		return nil, err
	}

	reg := obs.New(obs.NewManifest("chaos", cfg.Seed, 1, float64(cfg.N)))
	tr := reg.Trial(0)
	overflowC := tr.Counter("mailbox_overflows")
	droppedC := tr.Counter("fault_drops")

	start := time.Now()
	lb := transport.NewLoopback(transport.LoopbackConfig{
		DelayMS: func(a, b int) float64 { return chaosLat(a, b) / 2 },
		Faults:  inj,
		Queue:   cfg.Queue,
	})
	lb.SetInstruments(overflowC, droppedC)

	rt := propnode.New(lb, propnode.Config{
		Policy:              cfg.Policy,
		ProbeIntervalMS:     5,
		PingTimeout:         15 * time.Millisecond,
		Retries:             3,
		HeartbeatIntervalMS: 10,
		HeartbeatTimeout:    10 * time.Millisecond,
		SuspicionThreshold:  3,
		Lat:                 chaosLat,
		Seed:                cfg.Seed,
	})
	hosts := make([]int, cfg.N)
	for i := range hosts {
		hosts[i] = i
	}
	if err := rt.Start(hosts); err != nil {
		return nil, err
	}

	// The blast endpoint joins the transport but never the overlay: its
	// TData frames are protocol no-ops that exist purely to fill a mailbox.
	blaster, err := lb.Open(pressureHost)
	if err != nil {
		rt.Stop()
		return nil, err
	}
	defer blaster.Close()

	var log strings.Builder
	fmt.Fprintf(&log, "chaos seed=%d n=%d steps=%d kill=%d isolated=%v\n",
		cfg.Seed, cfg.N, cfg.Steps, sched.kills, sched.isolated)

	res := &Result{}
	next := 0
	for step := 1; step <= cfg.Steps; step++ {
		for next < len(sched.events) && sched.events[next].step == step {
			ev := sched.events[next]
			next++
			switch ev.kind {
			case "kill":
				if err := rt.CrashHost(ev.host); err != nil {
					return nil, fmt.Errorf("chaos: kill host %d: %w", ev.host, err)
				}
				res.Kills++
				fmt.Fprintf(&log, "step %d kill host=%d\n", step, ev.host)
			case "recover":
				if _, err := rt.Recover(ev.host); err != nil {
					return nil, fmt.Errorf("chaos: recover host %d: %w", ev.host, err)
				}
				res.Recovers++
				fmt.Fprintf(&log, "step %d recover host=%d\n", step, ev.host)
			case "partition-open":
				fmt.Fprintf(&log, "step %d partition-open isolated=%v\n", step, sched.isolated)
			case "partition-close":
				fmt.Fprintf(&log, "step %d partition-close\n", step)
			case "pressure":
				for i := 0; i < cfg.PressureMsgs; i++ {
					_ = blaster.Send(ev.host, transport.Message{Type: transport.TData})
				}
				fmt.Fprintf(&log, "step %d pressure host=%d msgs=%d\n", step, ev.host, cfg.PressureMsgs)
			}
		}

		// Let the step's wall-clock window elapse (absolute deadline, so the
		// partition window and the step count stay aligned).
		time.Sleep(time.Until(start.Add(time.Duration(float64(step) * cfg.StepMS * float64(time.Millisecond)))))

		// Quiesce point: repair any remaining corpses, re-bridge components
		// the partition's evictions may have cut, and audit. The repair +
		// reconnect + audit sequence retries briefly: mid-partition, a live
		// detector can legitimately evict the bridge edge EnsureConnected
		// just added before the audit samples the overlay, and that transient
		// must not count as a violation (the retry count never enters the
		// log, so determinism is unaffected).
		verdict := ""
		for try := 0; try < 40; try++ {
			if _, err := rt.RepairCrashed(); err != nil {
				return nil, fmt.Errorf("chaos: repair at step %d: %w", step, err)
			}
			rt.EnsureConnected()
			if verdict = auditNow(rt); verdict == "" {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		if verdict == "" {
			fmt.Fprintf(&log, "step %d audit ok\n", step)
		} else {
			fmt.Fprintf(&log, "step %d audit FAIL\n", step)
			if res.AuditErr == nil {
				res.AuditErr = fmt.Errorf("chaos: step %d: %s", step, verdict)
			}
		}
	}

	rt.Stop()
	// Post-Stop the overlay is static: one last repair + reconnect clears
	// anything a detector evicted during shutdown, then the final audit must
	// hold unconditionally.
	if _, err := rt.RepairCrashed(); err != nil {
		return nil, fmt.Errorf("chaos: final repair: %w", err)
	}
	rt.EnsureConnected()
	if verdict := auditNow(rt); verdict == "" {
		log.WriteString("final audit ok\n")
	} else {
		log.WriteString("final audit FAIL\n")
		if res.AuditErr == nil {
			res.AuditErr = fmt.Errorf("chaos: final audit: %s", verdict)
		}
	}
	res.Log = log.String()

	c := rt.Counters()
	stats := lb.Stats()
	res.Summary = fmt.Sprintf(
		"probes=%d exchanges=%d walk-failures=%d heartbeats=%d suspect-evictions=%d auto-repairs=%d recovers=%d stale-epochs=%d | sent=%d dropped=%d dups=%d overflows=%d (obs overflow=%v drops=%v)",
		c.Probes, c.Exchanges, c.WalkFailures, c.Heartbeats, c.SuspectEvictions,
		c.AutoRepairs, c.Recovers, c.StaleEpochs,
		stats.Sent, stats.Dropped, stats.Dups, stats.Overflows,
		overflowC.Value(), droppedC.Value())
	return res, nil
}

// auditNow evaluates the quiesce-point invariants; "" means all hold.
// Bijection and no-duplicate-slot are both CheckInvariants' business (a
// duplicate slot is exactly a bijection violation); connectivity over live
// slots is its own predicate.
func auditNow(rt *propnode.Runtime) string {
	var verdict string
	rt.View(func(o *overlay.Overlay) {
		au := audit.New(1, 16)
		au.Register(audit.OverlayBijection(o), audit.OverlayConnected(o))
		au.CheckNow()
		if err := au.Err(); err != nil {
			verdict = err.Error()
		}
	})
	return verdict
}

// chaosLat is the harness's two-cluster ground truth (same parity 1ms,
// cross-parity 20ms) — enough latency structure for PROP to keep optimizing
// while the harness tears the membership apart.
func chaosLat(a, b int) float64 {
	if a == b {
		return 0
	}
	if a%2 == b%2 {
		return 1
	}
	return 20
}
