// Package dhttest provides a conformance harness run by every DHT
// substrate's test suite (Chord, CAN, Pastry, Kademlia). The reproduction
// leans on the same contract from each geometry — deterministic ownership,
// lookups that terminate at the owner, correct per-hop accounting, and
// invariance of routing under PROP-G host swaps — so the contract is
// encoded once and each package plugs in an adapter.
//
// Key types: DHT (the adapter each substrate implements) and Run (the
// battery). See DESIGN.md §6 ("Conformance").
package dhttest

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/audit"
	"repro/internal/overlay"
	"repro/internal/rng"
)

// DHT is the adapter each substrate implements for the harness. Keys are
// uint32; substrates with a different key space (CAN's points) map them
// deterministically.
type DHT interface {
	// Overlay exposes the underlying slot/host overlay.
	Overlay() *overlay.Overlay
	// Owner returns the slot responsible for key.
	Owner(key uint32) int
	// Lookup routes from src toward key and reports the terminal slot, hop
	// count, and latency (including proc delays when proc is non-nil).
	Lookup(src int, key uint32, proc overlay.ProcDelayFunc) (owner, hops int, latency float64, err error)
}

// Churner is the churn face of a DHT adapter: dynamic membership with the
// substrate's own repair scheme. Every substrate implements it, so the
// churn-phase conformance check runs from this one harness instead of
// per-package copies.
type Churner interface {
	// Join adds a node on host and returns its slot.
	Join(host int, r *rng.Rand) (int, error)
	// Leave removes the live slot.
	Leave(slot int) error
}

// CrashChurner is the crash-stop face of a DHT adapter: abrupt node death —
// the victim vanishes without deregistering, survivors keep stale
// references — plus the substrate's failure-recovery round. Every substrate
// implements it, so the crash-phase conformance check is mandatory exactly
// like the graceful ChurnPhase.
type CrashChurner interface {
	// Crash kills the live slot crash-stop.
	Crash(slot int) error
	// RepairCrashed runs one failure-recovery round and reports how many
	// corpses it repaired.
	RepairCrashed() (int, error)
}

// InvariantChecker is implemented by adapters whose substrate exposes a
// structural self-check (Chord ring order, CAN tiling, Pastry/Kademlia
// table well-formedness). The churn phase evaluates it through the online
// auditor after every membership change.
type InvariantChecker interface {
	CheckInvariants() error
}

// Builder constructs a DHT instance over the given hosts for one test.
type Builder func(hosts []int, lat overlay.LatencyFunc, r *rng.Rand) (DHT, error)

// lineLat is the harness's deterministic latency function.
func lineLat(a, b int) float64 { return math.Abs(float64(a - b)) }

// latSource hands each subtest its latency plane. The sim backend returns
// lineLat directly; the live backend builds a fresh LiveLatency whose
// answers are real ping RTTs over the loopback transport, charged lineLat/2
// per leg so measured round trips equal lineLat float-exactly — which is
// what lets every battery assertion, including the exact-arithmetic ones,
// run unmodified against both backends.
type latSource func(t *testing.T) overlay.LatencyFunc

func simLat(t *testing.T) overlay.LatencyFunc { return lineLat }

func liveLat(t *testing.T) overlay.LatencyFunc {
	t.Helper()
	live := NewLiveLatency(LiveConfig{DelayMS: halfDelay(lineLat)})
	t.Cleanup(live.Close)
	return live.Lat
}

// Run exercises the full conformance battery against build, once per
// backend: "sim" evaluates latencies through the oracle function, "live"
// measures them with real message exchanges over the loopback transport.
// The battery itself — every predicate, every audit — is shared verbatim.
func Run(t *testing.T, build Builder) {
	t.Helper()
	backends := []struct {
		name string
		lat  latSource
	}{
		{"sim", simLat},
		{"live", liveLat},
	}
	for _, be := range backends {
		be := be
		t.Run(be.name, func(t *testing.T) {
			t.Run("LookupReachesOwner", func(t *testing.T) { runOwner(t, build, be.lat(t)) })
			t.Run("SelfLookupIsFree", func(t *testing.T) { runSelf(t, build, be.lat(t)) })
			t.Run("ProcDelayAccounting", func(t *testing.T) { runProc(t, build, be.lat(t)) })
			t.Run("SwapInvariance", func(t *testing.T) { runSwap(t, build, be.lat(t)) })
			t.Run("LatencyNonNegative", func(t *testing.T) { runNonNegative(t, build, be.lat(t)) })
			t.Run("ChurnPhase", func(t *testing.T) { runChurn(t, build, be.lat(t)) })
			t.Run("ChurnPhaseCrashStop", func(t *testing.T) { runChurnCrash(t, build, be.lat(t)) })
		})
	}
}

func mustBuild(t *testing.T, build Builder, n int, seed uint64, lat overlay.LatencyFunc) DHT {
	t.Helper()
	hosts := make([]int, n)
	for i := range hosts {
		hosts[i] = i * 7
	}
	d, err := build(hosts, lat, rng.New(seed))
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return d
}

func runOwner(t *testing.T, build Builder, lat overlay.LatencyFunc) {
	d := mustBuild(t, build, 128, 1, lat)
	r := rng.New(2)
	for i := 0; i < 300; i++ {
		key := uint32(r.Uint64())
		src := r.Intn(128)
		owner, _, _, err := d.Lookup(src, key, nil)
		if err != nil {
			t.Fatalf("lookup %d: %v", i, err)
		}
		if owner != d.Owner(key) {
			t.Fatalf("lookup terminated at %d, owner is %d", owner, d.Owner(key))
		}
	}
}

func runSelf(t *testing.T, build Builder, lat overlay.LatencyFunc) {
	d := mustBuild(t, build, 64, 3, lat)
	r := rng.New(4)
	checked := 0
	for i := 0; i < 2000 && checked < 20; i++ {
		key := uint32(r.Uint64())
		src := d.Owner(key)
		owner, hops, latency, err := d.Lookup(src, key, nil)
		if err != nil {
			t.Fatalf("self lookup: %v", err)
		}
		if owner != src || hops != 0 || latency != 0 {
			t.Fatalf("self lookup not free: owner=%d hops=%d latency=%v (src %d)",
				owner, hops, latency, src)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no self lookups exercised")
	}
}

func runProc(t *testing.T, build Builder, lat overlay.LatencyFunc) {
	d := mustBuild(t, build, 96, 5, lat)
	r := rng.New(6)
	for i := 0; i < 50; i++ {
		key := uint32(r.Uint64())
		src := r.Intn(96)
		_, hops, base, err := d.Lookup(src, key, nil)
		if err != nil {
			t.Fatal(err)
		}
		const delta = 13.0
		_, hops2, withProc, err := d.Lookup(src, key, func(int) float64 { return delta })
		if err != nil {
			t.Fatal(err)
		}
		if hops != hops2 {
			t.Fatalf("proc delay changed the route: %d vs %d hops", hops, hops2)
		}
		if math.Abs(withProc-base-float64(hops)*delta) > 1e-9 {
			t.Fatalf("proc accounting: base %v, with %v, hops %d", base, withProc, hops)
		}
	}
}

func runSwap(t *testing.T, build Builder, lat overlay.LatencyFunc) {
	d := mustBuild(t, build, 128, 7, lat)
	r := rng.New(8)
	// Record owners for a fixed key set.
	keys := make([]uint32, 100)
	owners := make([]int, len(keys))
	for i := range keys {
		keys[i] = uint32(r.Uint64())
		owners[i] = d.Owner(keys[i])
	}
	// PROP-G activity: random host swaps.
	o := d.Overlay()
	for i := 0; i < 80; i++ {
		u, v := r.Intn(128), r.Intn(128)
		if u != v {
			if err := o.SwapHosts(u, v); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Ownership is slot-attached, so it must be untouched; lookups must
	// still terminate there.
	for i, key := range keys {
		if got := d.Owner(key); got != owners[i] {
			t.Fatalf("owner of key %d changed under host swaps: %d -> %d", key, owners[i], got)
		}
		owner, _, _, err := d.Lookup(r.Intn(128), key, nil)
		if err != nil {
			t.Fatal(err)
		}
		if owner != owners[i] {
			t.Fatalf("lookup diverged from owner after swaps")
		}
	}
}

// runChurn is the churn-phase conformance check: nodes join and leave
// mid-run, and after every membership change the substrate must still be
// well-formed, connected, a slot↔host bijection, and resolve lookups at
// the true owner within a generous hop bound. All evaluation is routed
// through the online auditor so churn tests and audited experiment runs
// exercise the identical predicates.
func runChurn(t *testing.T, build Builder, lat overlay.LatencyFunc) {
	d := mustBuild(t, build, 64, 11, lat)
	c, ok := d.(Churner)
	if !ok {
		t.Fatalf("adapter %T does not implement dhttest.Churner; churn conformance is mandatory", d)
	}
	o := d.Overlay()
	a := audit.New(1, 64)
	a.Register(audit.OverlayBijection(o), audit.OverlayConnected(o))
	if ic, ok := d.(InvariantChecker); ok {
		a.Register(audit.Check("dht-wellformed", ic.CheckInvariants))
	}

	r := rng.New(12)
	nextHost := 1_000_000 // far above the i*7 hosts mustBuild assigns
	for op := 0; op < 40; op++ {
		if r.Bool(0.5) && o.NumAlive() > 8 {
			alive := o.AliveSlots()
			victim := alive[r.Intn(len(alive))]
			if err := c.Leave(victim); err != nil {
				t.Fatalf("op %d: leave(%d): %v", op, victim, err)
			}
			a.Observe(audit.Record{Kind: audit.KindLeave, A: victim})
		} else {
			slot, err := c.Join(nextHost, r)
			if err != nil {
				t.Fatalf("op %d: join(host %d): %v", op, nextHost, err)
			}
			a.Observe(audit.Record{Kind: audit.KindJoin, A: slot, B: nextHost})
			nextHost++
		}
		// Re-verify ownership and lookup termination from a random survivor.
		alive := o.AliveSlots()
		src := alive[r.Intn(len(alive))]
		key := uint32(r.Uint64())
		want := d.Owner(key)
		owner, hops, _, err := d.Lookup(src, key, nil)
		if err != nil {
			a.Fail("churn-lookup", err)
		} else if owner != want {
			a.Fail("churn-lookup", fmt.Errorf("lookup(%d, %#x) reached %d, owner is %d", src, key, owner, want))
		} else if bound := o.NumAlive() + 64; hops > bound {
			a.Fail("churn-lookup", fmt.Errorf("lookup(%d, %#x) took %d hops, bound %d", src, key, hops, bound))
		}
		a.Observe(audit.Record{Kind: audit.KindLookup, A: src, B: owner, Aux: []int{hops, want}})
	}
	if err := a.Err(); err != nil {
		t.Fatalf("churn phase failed (%s): %v", a.Summary(), err)
	}
	if a.Events() == 0 || a.Checks() == 0 {
		t.Fatalf("churn phase audited nothing: %s", a.Summary())
	}
}

// runChurnCrash is the crash-stop counterpart of runChurn: nodes die
// abruptly — stale references and all — and the substrate's RepairCrashed
// round must restore well-formedness, connectivity, and owner-correct
// lookups. The slot↔host bijection is audited during the corpse window too
// (CrashSlot must release hosts immediately); the stronger predicates are
// only demanded after each repair round, matching real failure-recovery
// semantics.
func runChurnCrash(t *testing.T, build Builder, lat overlay.LatencyFunc) {
	d := mustBuild(t, build, 64, 21, lat)
	cc, ok := d.(CrashChurner)
	if !ok {
		t.Fatalf("adapter %T does not implement dhttest.CrashChurner; crash-stop conformance is mandatory", d)
	}
	c, ok := d.(Churner)
	if !ok {
		t.Fatalf("adapter %T does not implement dhttest.Churner", d)
	}
	o := d.Overlay()

	// Checked on every membership event, including mid-corpse-window.
	always := audit.New(1, 64)
	always.Register(audit.OverlayBijection(o))
	// Checked after every repair round.
	postRepair := audit.New(1, 64)
	postRepair.Register(audit.OverlayBijection(o), audit.OverlayConnected(o))
	if ic, ok := d.(InvariantChecker); ok {
		postRepair.Register(audit.Check("dht-wellformed", ic.CheckInvariants))
	}

	r := rng.New(22)
	nextHost := 2_000_000 // disjoint from mustBuild's and runChurn's hosts
	totalCrashed := 0
	for round := 0; round < 12; round++ {
		want := 1 + r.Intn(3)
		crashed := 0
		for i := 0; i < want && o.NumAlive() > 8; i++ {
			alive := o.AliveSlots()
			victim := alive[r.Intn(len(alive))]
			if err := cc.Crash(victim); err != nil {
				t.Fatalf("round %d: crash(%d): %v", round, victim, err)
			}
			crashed++
			always.Observe(audit.Record{Kind: audit.KindLeave, A: victim})
		}
		totalCrashed += crashed

		repaired, err := cc.RepairCrashed()
		if err != nil {
			t.Fatalf("round %d: repair: %v", round, err)
		}
		if repaired < crashed {
			t.Fatalf("round %d: crashed %d nodes, repair handled %d", round, crashed, repaired)
		}
		postRepair.CheckNow()

		// A newcomer keeps the population healthy across rounds.
		slot, err := c.Join(nextHost, r)
		if err != nil {
			t.Fatalf("round %d: join(host %d): %v", round, nextHost, err)
		}
		always.Observe(audit.Record{Kind: audit.KindJoin, A: slot, B: nextHost})
		nextHost++

		// Post-repair lookups must resolve at the true owner again.
		alive := o.AliveSlots()
		for i := 0; i < 4; i++ {
			src := alive[r.Intn(len(alive))]
			key := uint32(r.Uint64())
			wantOwner := d.Owner(key)
			owner, hops, _, err := d.Lookup(src, key, nil)
			if err != nil {
				postRepair.Fail("crash-lookup", err)
			} else if owner != wantOwner {
				postRepair.Fail("crash-lookup",
					fmt.Errorf("lookup(%d, %#x) reached %d, owner is %d", src, key, owner, wantOwner))
			} else if bound := o.NumAlive() + 64; hops > bound {
				postRepair.Fail("crash-lookup",
					fmt.Errorf("lookup(%d, %#x) took %d hops, bound %d", src, key, hops, bound))
			}
			postRepair.Observe(audit.Record{Kind: audit.KindLookup, A: src, B: owner, Aux: []int{hops, wantOwner}})
		}
	}
	if totalCrashed == 0 {
		t.Fatal("crash phase crashed nothing")
	}
	if err := always.Err(); err != nil {
		t.Fatalf("corpse-window audit failed (%s): %v", always.Summary(), err)
	}
	if err := postRepair.Err(); err != nil {
		t.Fatalf("post-repair audit failed (%s): %v", postRepair.Summary(), err)
	}
	if postRepair.Checks() == 0 {
		t.Fatalf("crash phase audited nothing: %s", postRepair.Summary())
	}
}

func runNonNegative(t *testing.T, build Builder, lat overlay.LatencyFunc) {
	d := mustBuild(t, build, 64, 9, lat)
	r := rng.New(10)
	for i := 0; i < 200; i++ {
		_, hops, latency, err := d.Lookup(r.Intn(64), uint32(r.Uint64()), nil)
		if err != nil {
			t.Fatal(err)
		}
		if latency < 0 || hops < 0 {
			t.Fatalf("negative accounting: hops=%d latency=%v", hops, latency)
		}
		if hops == 0 && latency != 0 {
			t.Fatalf("zero hops with latency %v", latency)
		}
	}
}
