package dhttest

import (
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/overlay"
	"repro/internal/propnode"
	"repro/internal/transport"
)

// TestLiveRecoverRejoin is the live battery's crash-recovery phase: agents
// of a running propnode runtime crash-stop under a lossy transport, the
// survivors' failure detectors repair the membership, and each victim then
// restarts with the same host identity (next incarnation) and rejoins
// through the live bootstrap. At quiesce the audit invariants — slot↔host
// bijection, connectivity over live slots — must hold, and every recovered
// host must be answering traffic again. Runs under -race in the CI live job.
func TestLiveRecoverRejoin(t *testing.T) {
	inj, err := faults.NewInjector(faults.Config{Seed: 0xDEAD, LossProb: 0.02, DupProb: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	lb := transport.NewLoopback(transport.LoopbackConfig{DelayMS: halfDelay(lineLat), Faults: inj})
	rt := propnode.New(lb, propnode.Config{
		Policy:              core.PROPG,
		ProbeIntervalMS:     5,
		PingTimeout:         15 * time.Millisecond,
		Retries:             3,
		HeartbeatIntervalMS: 8,
		HeartbeatTimeout:    10 * time.Millisecond,
		SuspicionThreshold:  3,
		Lat:                 lineLat,
		Seed:                31,
	})
	hosts := make([]int, 16)
	for i := range hosts {
		hosts[i] = i
	}
	if err := rt.Start(hosts); err != nil {
		t.Fatalf("start: %v", err)
	}

	waitFor := func(d time.Duration, cond func() bool) bool {
		deadline := time.Now().Add(d)
		for time.Now().Before(deadline) {
			if cond() {
				return true
			}
			time.Sleep(5 * time.Millisecond)
		}
		return cond()
	}

	victims := []int{3, 8, 12}
	for _, h := range victims {
		if err := rt.CrashHost(h); err != nil {
			t.Fatalf("crash host %d: %v", h, err)
		}
	}
	// The survivors' detectors must clear every corpse on their own.
	if !waitFor(10*time.Second, func() bool {
		var unpurged int
		rt.View(func(o *overlay.Overlay) { unpurged = len(o.CrashedSlots()) })
		return unpurged == 0
	}) {
		t.Fatalf("corpses never auto-repaired: %+v", rt.Counters())
	}

	// Restart each victim with its persisted identity.
	for _, h := range victims {
		slot, err := rt.Recover(h)
		if err != nil {
			t.Fatalf("recover host %d: %v", h, err)
		}
		var deg int
		rt.View(func(o *overlay.Overlay) { deg = o.Degree(slot) })
		if deg == 0 {
			t.Fatalf("host %d rejoined with no links", h)
		}
	}
	if got := rt.Counters().Recovers; got != uint64(len(victims)) {
		t.Fatalf("Recovers = %d, want %d", got, len(victims))
	}

	// The rejoined agents must be live on the wire: give the runtime a
	// moment to probe through them, then quiesce and audit.
	probes := rt.Counters().Probes
	waitFor(5*time.Second, func() bool { return rt.Counters().Probes > probes+20 })
	rt.Stop()

	o := rt.Overlay()
	au := audit.New(1, 16)
	au.Register(audit.OverlayBijection(o), audit.OverlayConnected(o))
	au.CheckNow()
	if err := au.Err(); err != nil {
		t.Fatalf("audit at quiesce (%s): %v", au.Summary(), err)
	}
	if err := o.CheckInvariants(); err != nil {
		t.Fatalf("overlay invariants at quiesce: %v", err)
	}
	c := rt.Counters()
	if c.AutoRepairs == 0 {
		t.Fatalf("repair never went through the detector path: %+v", c)
	}
	t.Logf("recover-rejoin battery: %+v", c)
}
