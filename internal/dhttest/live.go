package dhttest

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/faults"
	"repro/internal/overlay"
	"repro/internal/transport"
)

// LiveConfig parameterizes a LiveLatency measurement plane.
type LiveConfig struct {
	// DelayMS is the virtual one-way delay the loopback charges per leg.
	// Realizing a target latency model d means d/2 here, so both legs of a
	// ping sum back to d float-exactly. Nil means zero delay.
	DelayMS func(a, b int) float64
	// Faults seeds the loopback's per-message fault gate (nil = perfect).
	Faults *faults.Injector
	// Timeout is the first-attempt ping deadline (default 50ms; later
	// attempts double it).
	Timeout time.Duration
	// Retries bounds retransmissions per ping (default 8).
	Retries int
}

// LiveLatency is the live backend's latency plane: an overlay.LatencyFunc
// whose answers come from real TPing round trips over the loopback
// transport instead of an oracle lookup. Endpoints open lazily on first
// use, measured RTTs are cached per directed pair (so the substrates'
// many repeat queries cost one ping each), and all faults flow through the
// loopback's deterministic per-link schedule.
//
// It is the seam that lets the dhttest conformance battery run unchanged
// against a live message-passing runtime: membership stays substrate-owned,
// only the measurement plane swaps.
type LiveLatency struct {
	cfg LiveConfig
	lb  *transport.Loopback

	mu    sync.Mutex
	nodes map[int]*transport.Node
	cache map[[2]int]float64
}

// NewLiveLatency builds the plane over a fresh loopback network.
func NewLiveLatency(cfg LiveConfig) *LiveLatency {
	if cfg.Timeout <= 0 {
		cfg.Timeout = 50 * time.Millisecond
	}
	if cfg.Retries <= 0 {
		cfg.Retries = 8
	}
	return &LiveLatency{
		cfg:   cfg,
		lb:    transport.NewLoopback(transport.LoopbackConfig{DelayMS: cfg.DelayMS, Faults: cfg.Faults}),
		nodes: make(map[int]*transport.Node),
		cache: make(map[[2]int]float64),
	}
}

// Lat is the overlay.LatencyFunc: RTT from hostA to hostB measured over the
// transport. Panics if the network loses every retransmission of a probe —
// with the retry budget that means the link is administratively dead, which
// no latency oracle can answer for.
func (l *LiveLatency) Lat(hostA, hostB int) float64 {
	if hostA == hostB {
		return 0
	}
	l.mu.Lock()
	if rtt, ok := l.cache[[2]int{hostA, hostB}]; ok {
		l.mu.Unlock()
		return rtt
	}
	a := l.nodeLocked(hostA)
	l.nodeLocked(hostB)
	l.mu.Unlock()

	rtt, err := a.Ping(hostB, l.cfg.Timeout, l.cfg.Retries)
	if err != nil {
		panic(fmt.Sprintf("dhttest: live RTT probe %d→%d: %v", hostA, hostB, err))
	}
	l.mu.Lock()
	l.cache[[2]int{hostA, hostB}] = rtt
	l.mu.Unlock()
	return rtt
}

// nodeLocked returns hostID's node, opening its endpoint on first use.
// Caller holds l.mu.
func (l *LiveLatency) nodeLocked(host int) *transport.Node {
	if n, ok := l.nodes[host]; ok {
		return n
	}
	ep, err := l.lb.Open(host)
	if err != nil {
		panic(fmt.Sprintf("dhttest: live endpoint for host %d: %v", host, err))
	}
	n := transport.NewNode(ep)
	l.nodes[host] = n
	return n
}

// Drops exposes the loopback's fault schedule — the artifact the
// determinism tests compare across seeded runs.
func (l *LiveLatency) Drops() []transport.Drop { return l.lb.Drops() }

// Stats exposes the loopback's delivery tallies.
func (l *LiveLatency) Stats() transport.LoopbackStats { return l.lb.Stats() }

// Close tears down every node.
func (l *LiveLatency) Close() {
	l.mu.Lock()
	nodes := make([]*transport.Node, 0, len(l.nodes))
	for _, n := range l.nodes {
		nodes = append(nodes, n)
	}
	l.nodes = make(map[int]*transport.Node)
	l.mu.Unlock()
	for _, n := range nodes {
		n.Close()
	}
}

// halfDelay adapts a latency model to the per-leg virtual delay the
// loopback charges, preserving float-exact RTTs (d/2 + d/2 == d).
func halfDelay(lat overlay.LatencyFunc) func(a, b int) float64 {
	return func(a, b int) float64 { return lat(a, b) / 2 }
}
