package dhttest

import (
	"testing"
	"time"

	"repro/internal/faults"
)

func TestLiveLatencyMatchesOracleExactly(t *testing.T) {
	live := NewLiveLatency(LiveConfig{DelayMS: halfDelay(lineLat)})
	defer live.Close()

	pairs := [][2]int{{0, 7}, {7, 0}, {3, 100}, {1_000_000, 2}, {5, 5}}
	for _, p := range pairs {
		got := live.Lat(p[0], p[1])
		if want := lineLat(p[0], p[1]); got != want {
			t.Fatalf("live RTT %d→%d = %v, oracle says %v (must be float-exact)", p[0], p[1], got, want)
		}
	}

	// The cache must absorb repeats: no new pings for known pairs.
	sent := live.Stats().Sent
	for i := 0; i < 10; i++ {
		for _, p := range pairs {
			live.Lat(p[0], p[1])
		}
	}
	if now := live.Stats().Sent; now != sent {
		t.Fatalf("cached lookups still pinged: Sent %d → %d", sent, now)
	}
}

func TestLiveLatencyFaultScheduleDeterministic(t *testing.T) {
	// The live-runtime acceptance criterion: a seeded measurement-plane run
	// with loss produces the identical fault schedule on every repetition.
	run := func() ([]float64, []struct {
		Src, Dst int
		Seq      uint64
	}) {
		inj, err := faults.NewInjector(faults.Config{Seed: 0xC0FFEE, LossProb: 0.05})
		if err != nil {
			t.Fatal(err)
		}
		live := NewLiveLatency(LiveConfig{
			DelayMS: halfDelay(lineLat),
			Faults:  inj,
			Timeout: 20 * time.Millisecond,
			Retries: 10,
		})
		defer live.Close()

		var rtts []float64
		for a := 0; a < 12; a++ {
			for b := 0; b < 12; b++ {
				if a != b {
					rtts = append(rtts, live.Lat(a*7, b*7))
				}
			}
		}
		drops := live.Drops()
		sched := make([]struct {
			Src, Dst int
			Seq      uint64
		}, len(drops))
		for i, d := range drops {
			sched[i] = struct {
				Src, Dst int
				Seq      uint64
			}{d.Src, d.Dst, d.Seq}
		}
		return rtts, sched
	}

	r1, s1 := run()
	r2, s2 := run()
	if len(s1) == 0 {
		t.Fatal("no losses with LossProb 0.05 over 132 probed pairs; fault gate inert")
	}
	if len(s1) != len(s2) {
		t.Fatalf("fault schedules differ in length: %d vs %d", len(s1), len(s2))
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("fault schedules diverge at %d: %+v vs %+v", i, s1[i], s2[i])
		}
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("measured RTTs diverge at %d: %v vs %v", i, r1[i], r2[i])
		}
	}
}

func TestLiveLatencyLossyProbesStillExact(t *testing.T) {
	// Loss delays a measurement (retransmits) but never distorts it: the
	// surviving exchange still reports the exact virtual RTT.
	inj, err := faults.NewInjector(faults.Config{Seed: 9, LossProb: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	live := NewLiveLatency(LiveConfig{
		DelayMS: halfDelay(lineLat),
		Faults:  inj,
		Timeout: 10 * time.Millisecond,
		Retries: 12,
	})
	defer live.Close()
	for a := 0; a < 8; a++ {
		for b := a + 1; b < 8; b++ {
			if got, want := live.Lat(a, b), lineLat(a, b); got != want {
				t.Fatalf("lossy RTT %d→%d = %v, want exactly %v", a, b, got, want)
			}
		}
	}
	if live.Stats().Dropped == 0 {
		t.Fatal("no drops at 30% loss; fault gate inert")
	}
}
