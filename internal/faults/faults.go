// Package faults is the deterministic fault-injection layer of the
// simulator: it decides, message by message, whether protocol traffic is
// delivered, lost, duplicated, or delayed, and whether a link or a whole
// region of the physical network is currently unreachable.
//
// The paper evaluates PROP-G/PROP-O only under graceful churn and perfectly
// reliable delivery; real overlays (Ripeanu et al.'s Gnutella maps, Aspnes
// et al.'s fault-tolerant routing) live with substantial message loss and
// abrupt node failure. This package supplies the environment half of that
// story; the protocol half — timeouts, bounded retry with back-off, and
// liveness-based neighbor eviction — lives in internal/core, and crash-stop
// membership death lives in internal/overlay (CrashSlot) and the DHT
// packages (RepairCrashed).
//
// Everything is seed-driven and consulted only from the single-threaded
// event engine, so a fault schedule is a pure function of its Config: the
// same seed yields the same losses at the same simulated times, which is
// what makes the figR* robustness experiments byte-reproducible and lets
// the fuzz tests shrink failing schedules. Per-message faults (loss,
// duplication, jitter) draw from a private generator; per-link transient
// outages and partitions are stateless functions of (link, time window), so
// they hold consistently for every message crossing the link during the
// window.
//
// Key types: Config, Injector (nil receiver = faults off, zero cost), and
// Delivery. See DESIGN.md §9 for the fault model and parameter table.
package faults

import (
	"fmt"

	"repro/internal/rng"
)

// Config describes one fault schedule. The zero value means "no faults":
// every probability is zero and no partition window is set.
type Config struct {
	// Seed drives the per-message draws and the per-link outage hash. Two
	// injectors with the same Config produce identical schedules.
	Seed uint64
	// LossProb is the probability that any single message is silently
	// dropped (loss is i.i.d. per message, the classic lossy-channel model).
	LossProb float64
	// DupProb is the probability that a delivered message arrives twice.
	// The protocols must detect and drop the duplicate (internal/core counts
	// DupsDropped); an unhardened protocol would re-execute the exchange.
	DupProb float64
	// JitterMS is the maximum extra one-way queueing delay, drawn uniformly
	// from [0, JitterMS) per delivered message. Jitter perturbs measured
	// probe RTTs — the Var computation sees it — but never ground truth.
	JitterMS float64
	// LinkFailProb is the probability that a given physical link is down for
	// a given outage window (transient link failure). Within one window the
	// link is consistently dead in both directions.
	LinkFailProb float64
	// LinkFailPeriodMS is the outage-window length; 0 selects
	// DefaultLinkFailPeriodMS. Outage state is a pure function of
	// (link, floor(now/period)), so it needs no timers.
	LinkFailPeriodMS float64
	// PartitionStartMS and PartitionStopMS bound the network-partition
	// window in simulated time (no partition when both are zero).
	PartitionStartMS, PartitionStopMS float64
	// Isolated is the host set on the far side of the partition: during the
	// window, every message between an isolated and a non-isolated host is
	// dropped. Traffic within either side is unaffected.
	Isolated map[int]bool
}

// DefaultLinkFailPeriodMS is the transient-outage window used when
// Config.LinkFailPeriodMS is zero: one simulated minute.
const DefaultLinkFailPeriodMS = 60000

// Validate reports the first configuration error.
func (c Config) Validate() error {
	inUnit := func(name string, v float64) error {
		if v < 0 || v > 1 {
			return fmt.Errorf("faults: %s = %v out of [0,1]", name, v)
		}
		return nil
	}
	if err := inUnit("LossProb", c.LossProb); err != nil {
		return err
	}
	if err := inUnit("DupProb", c.DupProb); err != nil {
		return err
	}
	if err := inUnit("LinkFailProb", c.LinkFailProb); err != nil {
		return err
	}
	switch {
	case c.JitterMS < 0:
		return fmt.Errorf("faults: JitterMS = %v, want >= 0", c.JitterMS)
	case c.LinkFailPeriodMS < 0:
		return fmt.Errorf("faults: LinkFailPeriodMS = %v, want >= 0", c.LinkFailPeriodMS)
	case c.PartitionStopMS < c.PartitionStartMS:
		return fmt.Errorf("faults: partition window [%v,%v) inverted",
			c.PartitionStartMS, c.PartitionStopMS)
	case c.PartitionStopMS > c.PartitionStartMS && len(c.Isolated) == 0:
		return fmt.Errorf("faults: partition window set but no hosts isolated")
	}
	return nil
}

// Reason classifies why a message was lost.
type Reason uint8

const (
	// ReasonNone marks a delivered message.
	ReasonNone Reason = iota
	// ReasonLoss is an i.i.d. per-message drop.
	ReasonLoss
	// ReasonLinkDown is a transient link outage.
	ReasonLinkDown
	// ReasonPartition is a drop across the partition cut.
	ReasonPartition
)

// String names the reason.
func (r Reason) String() string {
	switch r {
	case ReasonNone:
		return "delivered"
	case ReasonLoss:
		return "loss"
	case ReasonLinkDown:
		return "link-down"
	case ReasonPartition:
		return "partition"
	default:
		return fmt.Sprintf("Reason(%d)", uint8(r))
	}
}

// Delivery is the injector's verdict on one message.
type Delivery struct {
	// Lost reports that the message never arrives; Reason says why.
	Lost bool
	// Reason classifies the drop (ReasonNone when delivered).
	Reason Reason
	// Dup reports that the message arrives twice (only when delivered).
	Dup bool
	// DelayMS is the extra queueing delay of a delivered message.
	DelayMS float64
}

// Stats tallies what the injector actually did, for fault manifests and the
// figR* metrics streams. All fields are totals since construction.
type Stats struct {
	// Messages counts Deliver calls.
	Messages uint64
	// Lost counts i.i.d. per-message drops.
	Lost uint64
	// Dups counts duplicated deliveries.
	Dups uint64
	// LinkDownDrops counts drops due to transient link outages.
	LinkDownDrops uint64
	// PartitionDrops counts drops across the partition cut.
	PartitionDrops uint64
	// JitterSumMS is the total injected queueing delay.
	JitterSumMS float64
}

// Injector decides the fate of protocol messages. It must only be consulted
// from the single-threaded event engine (it owns a mutable RNG). A nil
// *Injector is the disabled state: Enabled reports false and Deliver
// returns a clean Delivery without consuming randomness.
type Injector struct {
	cfg    Config
	period float64
	r      *rng.Rand
	stats  Stats
}

// NewInjector builds an injector for the given schedule.
func NewInjector(cfg Config) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	period := cfg.LinkFailPeriodMS
	if period == 0 {
		period = DefaultLinkFailPeriodMS
	}
	return &Injector{cfg: cfg, period: period, r: rng.New(cfg.Seed ^ 0xfa017f5eed)}, nil
}

// Enabled reports whether fault injection is active. Attaching any
// constructed injector — even an all-zero one — opts the protocols into
// their fault-aware paths; only a nil injector is the historical fault-free
// fast path.
func (in *Injector) Enabled() bool { return in != nil }

// Config returns the schedule this injector runs.
func (in *Injector) Config() Config { return in.cfg }

// Stats returns the activity totals so far.
func (in *Injector) Stats() Stats {
	if in == nil {
		return Stats{}
	}
	return in.stats
}

// Deliver decides the fate of one message from host a to host b at
// simulated time nowMS. Partition and link-outage drops are checked first
// (they are deterministic in time and consume no randomness), then the
// i.i.d. loss/duplication/jitter draws.
func (in *Injector) Deliver(a, b int, nowMS float64) Delivery {
	if in == nil {
		return Delivery{}
	}
	in.stats.Messages++
	if in.Partitioned(a, b, nowMS) {
		in.stats.PartitionDrops++
		return Delivery{Lost: true, Reason: ReasonPartition}
	}
	if in.LinkDown(a, b, nowMS) {
		in.stats.LinkDownDrops++
		return Delivery{Lost: true, Reason: ReasonLinkDown}
	}
	var d Delivery
	if in.cfg.LossProb > 0 && in.r.Float64() < in.cfg.LossProb {
		in.stats.Lost++
		return Delivery{Lost: true, Reason: ReasonLoss}
	}
	if in.cfg.DupProb > 0 && in.r.Float64() < in.cfg.DupProb {
		in.stats.Dups++
		d.Dup = true
	}
	if in.cfg.JitterMS > 0 {
		d.DelayMS = in.r.Float64() * in.cfg.JitterMS
		in.stats.JitterSumMS += d.DelayMS
	}
	return d
}

// Message-fault salts: each per-message draw of DeliverStateless hashes the
// same (seed, direction, seq) tuple under a distinct salt so the loss, dup,
// and jitter verdicts are statistically independent.
const (
	saltLoss uint64 = 1 + iota
	saltDup
	saltJitter
)

// DeliverStateless decides the fate of one message as a pure function of
// (seed, direction a→b, seq) — no generator state is consumed, so the
// verdict is independent of global delivery order. This is the face the
// live transports use (internal/transport): a concurrent runtime cannot
// guarantee a total order on Deliver calls, but per-link sequence numbers
// are ordered per sender, so hashing them keeps a seeded live run's fault
// schedule reproducible (the figR-style determinism contract, outside the
// simulator). nowMS positions the message against the partition and
// link-outage windows, exactly as in Deliver.
//
// Unlike Deliver, no Stats are tallied — the function is pure; transports
// own their delivery accounting (e.g. transport.Loopback's drop log).
func (in *Injector) DeliverStateless(a, b int, seq uint64, nowMS float64) Delivery {
	if in == nil {
		return Delivery{}
	}
	if in.Partitioned(a, b, nowMS) {
		return Delivery{Lost: true, Reason: ReasonPartition}
	}
	if in.LinkDown(a, b, nowMS) {
		return Delivery{Lost: true, Reason: ReasonLinkDown}
	}
	var d Delivery
	if in.cfg.LossProb > 0 && unit(msgHash(in.cfg.Seed, a, b, seq, saltLoss)) < in.cfg.LossProb {
		return Delivery{Lost: true, Reason: ReasonLoss}
	}
	if in.cfg.DupProb > 0 && unit(msgHash(in.cfg.Seed, a, b, seq, saltDup)) < in.cfg.DupProb {
		d.Dup = true
	}
	if in.cfg.JitterMS > 0 {
		d.DelayMS = unit(msgHash(in.cfg.Seed, a, b, seq, saltJitter)) * in.cfg.JitterMS
	}
	return d
}

// JitterStateless returns only the jitter component of the stateless
// verdict for (a→b, seq): the same hash DeliverStateless would draw, with
// the loss and duplication rolls skipped. Two uses need it: duplicate
// copies (their existence was decided by the original's Dup bit, but
// their delay must be an independent draw keyed by their own sequence
// number) and loss-exempt messages such as the sharded engine's swap
// acknowledgment, which still jitters but never drops.
func (in *Injector) JitterStateless(a, b int, seq uint64) float64 {
	if in == nil || in.cfg.JitterMS <= 0 {
		return 0
	}
	return unit(msgHash(in.cfg.Seed, a, b, seq, saltJitter)) * in.cfg.JitterMS
}

// msgHash mixes (seed, directed link, per-link sequence number, salt) into
// 64 well-mixed bits. Direction matters — a→b and b→a are independent
// message streams — unlike linkHash, whose outages are link-symmetric.
func msgHash(seed uint64, a, b int, seq, salt uint64) uint64 {
	x := seed ^ 0x9e3779b97f4a7c15
	for _, w := range [...]uint64{uint64(a), uint64(b), seq, salt} {
		x += w + 0x9e3779b97f4a7c15
		x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
		x = (x ^ (x >> 27)) * 0x94d049bb133111eb
		x ^= x >> 31
	}
	return x
}

// unit maps 64 hash bits onto [0,1) with 53-bit precision.
func unit(h uint64) float64 { return float64(h>>11) / (1 << 53) }

// Partitioned reports whether hosts a and b are on opposite sides of the
// partition cut at time nowMS.
func (in *Injector) Partitioned(a, b int, nowMS float64) bool {
	if in == nil || len(in.cfg.Isolated) == 0 {
		return false
	}
	if nowMS < in.cfg.PartitionStartMS || nowMS >= in.cfg.PartitionStopMS {
		return false
	}
	return in.cfg.Isolated[a] != in.cfg.Isolated[b]
}

// LinkDown reports whether the physical link {a,b} is in a transient outage
// at time nowMS. The outage state is a pure hash of (seed, link, window),
// so it is direction-symmetric, consistent for every message in the window,
// and independent of how often it is asked.
func (in *Injector) LinkDown(a, b int, nowMS float64) bool {
	if in == nil || in.cfg.LinkFailProb <= 0 {
		return false
	}
	if a > b {
		a, b = b, a
	}
	window := uint64(nowMS / in.period)
	h := linkHash(in.cfg.Seed, uint64(a), uint64(b), window)
	return unit(h) < in.cfg.LinkFailProb
}

// linkHash mixes (seed, link endpoints, outage window) into 64 well-mixed
// bits with a SplitMix64-style finalizer per word.
func linkHash(seed, a, b, window uint64) uint64 {
	x := seed ^ 0x9e3779b97f4a7c15
	for _, w := range [...]uint64{a, b, window} {
		x += w + 0x9e3779b97f4a7c15
		x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
		x = (x ^ (x >> 27)) * 0x94d049bb133111eb
		x ^= x >> 31
	}
	return x
}
