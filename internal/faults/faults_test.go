package faults

import (
	"math"
	"testing"
)

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"zero", Config{}, true},
		{"typical", Config{Seed: 1, LossProb: 0.05, DupProb: 0.01, JitterMS: 20, LinkFailProb: 0.02}, true},
		{"loss-negative", Config{LossProb: -0.1}, false},
		{"loss-over-one", Config{LossProb: 1.5}, false},
		{"dup-over-one", Config{DupProb: 2}, false},
		{"linkfail-over-one", Config{LinkFailProb: 1.01}, false},
		{"jitter-negative", Config{JitterMS: -1}, false},
		{"period-negative", Config{LinkFailPeriodMS: -5}, false},
		{"partition-inverted", Config{PartitionStartMS: 10, PartitionStopMS: 5, Isolated: map[int]bool{1: true}}, false},
		{"partition-empty", Config{PartitionStartMS: 5, PartitionStopMS: 10}, false},
		{"partition-ok", Config{PartitionStartMS: 5, PartitionStopMS: 10, Isolated: map[int]bool{1: true}}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if (err == nil) != tc.ok {
				t.Fatalf("Validate() = %v, want ok=%v", err, tc.ok)
			}
		})
	}
}

func TestNilInjectorIsNoOp(t *testing.T) {
	var in *Injector
	if in.Enabled() {
		t.Fatal("nil injector reports Enabled")
	}
	d := in.Deliver(1, 2, 100)
	if d.Lost || d.Dup || d.DelayMS != 0 || d.Reason != ReasonNone {
		t.Fatalf("nil Deliver = %+v, want clean delivery", d)
	}
	if in.LinkDown(1, 2, 0) || in.Partitioned(1, 2, 0) {
		t.Fatal("nil injector reports faults")
	}
	if s := in.Stats(); s != (Stats{}) {
		t.Fatalf("nil Stats = %+v, want zero", s)
	}
}

func TestDeliverDeterministic(t *testing.T) {
	cfg := Config{Seed: 42, LossProb: 0.1, DupProb: 0.05, JitterMS: 30, LinkFailProb: 0.03}
	run := func() []Delivery {
		in, err := NewInjector(cfg)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]Delivery, 0, 500)
		for i := 0; i < 500; i++ {
			out = append(out, in.Deliver(i%17, (i*7)%23, float64(i)*1000))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delivery %d differs across identical injectors: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestLossAndDupRates(t *testing.T) {
	cfg := Config{Seed: 7, LossProb: 0.2, DupProb: 0.1, JitterMS: 10}
	in, err := NewInjector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const n = 20000
	for i := 0; i < n; i++ {
		d := in.Deliver(0, 1, float64(i))
		if d.Lost && (d.Dup || d.DelayMS != 0) {
			t.Fatalf("lost message carries delivery side effects: %+v", d)
		}
		if d.DelayMS < 0 || d.DelayMS >= cfg.JitterMS {
			t.Fatalf("jitter %v out of [0,%v)", d.DelayMS, cfg.JitterMS)
		}
	}
	s := in.Stats()
	if s.Messages != n {
		t.Fatalf("Messages = %d, want %d", s.Messages, n)
	}
	lossRate := float64(s.Lost) / n
	if math.Abs(lossRate-cfg.LossProb) > 0.02 {
		t.Fatalf("observed loss rate %.3f, want ~%.2f", lossRate, cfg.LossProb)
	}
	// Dups are drawn only on delivered messages.
	dupRate := float64(s.Dups) / float64(n-int(s.Lost))
	if math.Abs(dupRate-cfg.DupProb) > 0.02 {
		t.Fatalf("observed dup rate %.3f, want ~%.2f", dupRate, cfg.DupProb)
	}
	if s.JitterSumMS <= 0 {
		t.Fatal("no jitter accumulated")
	}
}

func TestLinkDownConsistentWithinWindow(t *testing.T) {
	cfg := Config{Seed: 3, LinkFailProb: 0.3, LinkFailPeriodMS: 10000}
	in, err := NewInjector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	downAny, upAny := false, false
	for a := 0; a < 10; a++ {
		for b := a + 1; b < 10; b++ {
			for w := 0; w < 20; w++ {
				base := float64(w) * cfg.LinkFailPeriodMS
				first := in.LinkDown(a, b, base)
				// Same window, different instants and direction: consistent.
				if got := in.LinkDown(b, a, base+cfg.LinkFailPeriodMS-1); got != first {
					t.Fatalf("link (%d,%d) window %d inconsistent: %v then %v", a, b, w, first, got)
				}
				if first {
					downAny = true
				} else {
					upAny = true
				}
			}
		}
	}
	if !downAny || !upAny {
		t.Fatalf("degenerate outage schedule: downAny=%v upAny=%v", downAny, upAny)
	}
}

func TestLinkDownConsumesNoRandomness(t *testing.T) {
	cfg := Config{Seed: 9, LossProb: 0.5, LinkFailProb: 0.5}
	mk := func(probeLinks bool) []Delivery {
		in, err := NewInjector(cfg)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]Delivery, 0, 100)
		for i := 0; i < 100; i++ {
			if probeLinks {
				// Extra queries must not perturb the per-message stream.
				in.LinkDown(i, i+1, float64(i))
				in.Partitioned(i, i+1, float64(i))
			}
			out = append(out, in.Deliver(1000, 1001, 1e9+float64(i)))
		}
		return out
	}
	a, b := mk(false), mk(true)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("per-message stream perturbed by outage queries at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestPartitionWindow(t *testing.T) {
	cfg := Config{
		Seed:             1,
		PartitionStartMS: 1000,
		PartitionStopMS:  2000,
		Isolated:         map[int]bool{5: true, 6: true},
	}
	in, err := NewInjector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		a, b int
		now  float64
		want bool
	}{
		{5, 1, 999, false},  // before window
		{5, 1, 1000, true},  // cut, window open
		{5, 1, 1999, true},  // cut, last instant
		{5, 1, 2000, false}, // window closed (half-open)
		{5, 6, 1500, false}, // both isolated: same side
		{1, 2, 1500, false}, // both mainland
	}
	for _, tc := range cases {
		if got := in.Partitioned(tc.a, tc.b, tc.now); got != tc.want {
			t.Fatalf("Partitioned(%d,%d,%v) = %v, want %v", tc.a, tc.b, tc.now, got, tc.want)
		}
		d := in.Deliver(tc.a, tc.b, tc.now)
		if tc.want && (!d.Lost || d.Reason != ReasonPartition) {
			t.Fatalf("Deliver(%d,%d,%v) = %+v, want partition drop", tc.a, tc.b, tc.now, d)
		}
	}
	if s := in.Stats(); s.PartitionDrops == 0 {
		t.Fatal("no partition drops recorded")
	}
}

func TestReasonString(t *testing.T) {
	want := map[Reason]string{
		ReasonNone:      "delivered",
		ReasonLoss:      "loss",
		ReasonLinkDown:  "link-down",
		ReasonPartition: "partition",
		Reason(99):      "Reason(99)",
	}
	for r, s := range want {
		if r.String() != s {
			t.Fatalf("Reason(%d).String() = %q, want %q", r, r.String(), s)
		}
	}
}

func TestDeliverStatelessDeterministicAndOrderFree(t *testing.T) {
	in, err := NewInjector(Config{Seed: 99, LossProb: 0.2, DupProb: 0.1, JitterMS: 5})
	if err != nil {
		t.Fatal(err)
	}
	// The verdict for (link, seq) must not depend on what was asked before:
	// record a schedule, interleave unrelated traffic, re-ask in a different
	// order, and require identical verdicts.
	type key struct {
		a, b int
		seq  uint64
	}
	first := make(map[key]Delivery)
	for seq := uint64(0); seq < 200; seq++ {
		for _, l := range [][2]int{{1, 2}, {2, 1}, {3, 7}} {
			first[key{l[0], l[1], seq}] = in.DeliverStateless(l[0], l[1], seq, 0)
		}
	}
	for seq := uint64(199); ; seq-- {
		for _, l := range [][2]int{{3, 7}, {1, 2}, {2, 1}} {
			in.Deliver(l[0], l[1], 0) // interleaved stateful traffic must not perturb
			got := in.DeliverStateless(l[0], l[1], seq, 0)
			if want := first[key{l[0], l[1], seq}]; got != want {
				t.Fatalf("DeliverStateless(%d,%d,%d) = %+v, was %+v", l[0], l[1], seq, got, want)
			}
		}
		if seq == 0 {
			break
		}
	}
	// A second injector with the same config reproduces the schedule.
	in2, err := NewInjector(Config{Seed: 99, LossProb: 0.2, DupProb: 0.1, JitterMS: 5})
	if err != nil {
		t.Fatal(err)
	}
	for k, want := range first {
		if got := in2.DeliverStateless(k.a, k.b, k.seq, 0); got != want {
			t.Fatalf("fresh injector: DeliverStateless(%d,%d,%d) = %+v, want %+v", k.a, k.b, k.seq, got, want)
		}
	}
}

func TestDeliverStatelessRates(t *testing.T) {
	in, err := NewInjector(Config{Seed: 5, LossProb: 0.3, DupProb: 0.2, JitterMS: 10})
	if err != nil {
		t.Fatal(err)
	}
	const n = 20000
	lost, dups := 0, 0
	var jitter float64
	for seq := uint64(0); seq < n; seq++ {
		d := in.DeliverStateless(4, 9, seq, 0)
		if d.Lost {
			if d.Reason != ReasonLoss {
				t.Fatalf("seq %d: loss with reason %v", seq, d.Reason)
			}
			lost++
			continue
		}
		if d.Dup {
			dups++
		}
		if d.DelayMS < 0 || d.DelayMS >= 10 {
			t.Fatalf("seq %d: jitter %v out of [0,10)", seq, d.DelayMS)
		}
		jitter += d.DelayMS
	}
	if r := float64(lost) / n; r < 0.27 || r > 0.33 {
		t.Fatalf("loss rate %.4f, want ~0.30", r)
	}
	if r := float64(dups) / float64(n-lost); r < 0.17 || r > 0.23 {
		t.Fatalf("dup rate %.4f, want ~0.20", r)
	}
	if mean := jitter / float64(n-lost); mean < 4 || mean > 6 {
		t.Fatalf("mean jitter %.3f, want ~5", mean)
	}
	if s := in.Stats(); s.Messages != 0 {
		t.Fatalf("stateless path tallied %d messages; it must stay pure", s.Messages)
	}
}

func TestDeliverStatelessNilAndWindows(t *testing.T) {
	var nilInj *Injector
	if d := nilInj.DeliverStateless(1, 2, 0, 0); d.Lost || d.Dup || d.DelayMS != 0 {
		t.Fatalf("nil injector verdict %+v, want clean delivery", d)
	}
	in, err := NewInjector(Config{
		Seed: 3, PartitionStartMS: 100, PartitionStopMS: 200, Isolated: map[int]bool{2: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if d := in.DeliverStateless(1, 2, 7, 150); !d.Lost || d.Reason != ReasonPartition {
		t.Fatalf("in-window cross-cut verdict %+v, want partition drop", d)
	}
	if d := in.DeliverStateless(1, 2, 7, 250); d.Lost {
		t.Fatalf("post-window verdict %+v, want delivery", d)
	}
}
