// Quickstart: build an Internet-like physical topology, scatter a small
// Gnutella-style overlay across it, run PROP-G for thirty simulated
// minutes, and watch the overlay pull itself onto the physical network.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/gnutella"
	"repro/internal/netsim"
	"repro/internal/rng"
)

func main() {
	r := rng.New(42)

	// 1. The physical network: a GT-ITM-style transit-stub topology with
	//    5/20/50 ms links (stub-stub / stub-transit / transit-transit).
	net, err := netsim.Generate(netsim.TSLarge(), r)
	if err != nil {
		log.Fatal(err)
	}
	oracle := netsim.NewOracle(net)
	fmt.Println("physical network:", net)

	// 2. The overlay: 256 peers on random stub hosts, joined Gnutella-style
	//    (preferential attachment, minimum degree 4). Logical neighbors
	//    have nothing to do with physical proximity — that is the mismatch
	//    problem the paper solves.
	hosts := append([]int(nil), net.StubHosts...)
	r.Shuffle(len(hosts), func(i, j int) { hosts[i], hosts[j] = hosts[j], hosts[i] })
	o, err := gnutella.Build(hosts[:256], gnutella.DefaultConfig(), oracle.Latency, r)
	if err != nil {
		log.Fatal(err)
	}
	phys := net.MeanLinkLatency()
	fmt.Printf("before: mean overlay link %.1f ms (stretch %.1f)\n",
		o.MeanLinkLatency(), o.Stretch(phys))

	// 3. PROP-G: every peer periodically random-walks two hops, meets a
	//    candidate, and the pair swap overlay positions whenever that
	//    lowers their combined neighbor latency (Var > 0).
	p, err := core.New(o, core.DefaultConfig(core.PROPG), r.Split())
	if err != nil {
		log.Fatal(err)
	}
	exchanges := 0
	p.Trace = func(core.ExchangeEvent) { exchanges++ }

	eng := event.New()
	p.Start(eng)
	eng.RunUntil(30 * 60000) // 30 simulated minutes

	// 4. The overlay is isomorphic to what it was (Theorem 2) — only the
	//    mapping onto machines changed — yet far better matched.
	fmt.Printf("after:  mean overlay link %.1f ms (stretch %.1f)\n",
		o.MeanLinkLatency(), o.Stretch(phys))
	fmt.Printf("%d peer-exchanges executed, %d probe cycles, connectivity intact: %v\n",
		exchanges, p.Counters.Probes, o.Connected())
}
