// Theorem 2 on parade: PROP-G applied to every overlay geometry the paper
// names — ring, hypercube, tree, torus — plus Pastry. The logical structure
// of each is untouched (verified edge-for-edge) while the mapping onto the
// physical network improves.
//
//	go run ./examples/multi-topology
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/kademlia"
	"repro/internal/netsim"
	"repro/internal/overlay"
	"repro/internal/pastry"
	"repro/internal/rng"
	"repro/internal/topology"
)

func main() {
	r := rng.New(31)
	net, err := netsim.Generate(netsim.TSLarge(), r)
	if err != nil {
		log.Fatal(err)
	}
	oracle := netsim.NewOracle(net)
	allHosts := append([]int(nil), net.StubHosts...)
	r.Shuffle(len(allHosts), func(i, j int) { allHosts[i], allHosts[j] = allHosts[j], allHosts[i] })

	fmt.Printf("%-10s  %8s  %14s  %14s  %10s  %s\n",
		"shape", "peers", "before (ms)", "after (ms)", "exchanges", "structure preserved")

	sizes := map[topology.Kind]int{
		topology.Ring:      128,
		topology.Hypercube: 128,
		topology.Tree:      127,
		topology.Torus:     121,
	}
	for _, kind := range topology.Kinds() {
		n := sizes[kind]
		o, err := topology.Build(kind, allHosts[:n], oracle.Latency)
		if err != nil {
			log.Fatal(err)
		}
		report(string(kind), o, r, oracle)
	}

	// Pastry and Kademlia: the same exchange protocol on production DHT
	// geometries (prefix routing and the XOR metric).
	mesh, err := pastry.Build(allHosts[:128], pastry.DefaultConfig(), oracle.Latency, r)
	if err != nil {
		log.Fatal(err)
	}
	report("pastry", mesh.O, r, oracle)

	knet, err := kademlia.Build(allHosts[128:256], kademlia.DefaultConfig(), oracle.Latency, r)
	if err != nil {
		log.Fatal(err)
	}
	report("kademlia", knet.O, r, oracle)
}

func report(name string, o *overlay.Overlay, r *rng.Rand, oracle *netsim.Oracle) {
	before := o.MeanLinkLatency()
	edgesBefore := o.Logical.Edges()

	p, err := core.New(o, core.DefaultConfig(core.PROPG), r.Split())
	if err != nil {
		log.Fatal(err)
	}
	e := event.New()
	p.Start(e)
	e.RunUntil(30 * 60000)

	edgesAfter := o.Logical.Edges()
	preserved := len(edgesBefore) == len(edgesAfter)
	if preserved {
		for i := range edgesBefore {
			if edgesBefore[i] != edgesAfter[i] {
				preserved = false
				break
			}
		}
	}
	fmt.Printf("%-10s  %8d  %14.1f  %14.1f  %10d  %v\n",
		name, o.NumAlive(), before, o.MeanLinkLatency(), p.Counters.Exchanges, preserved)
}
