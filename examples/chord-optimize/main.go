// Structured-overlay walkthrough: PROP-G on a Chord DHT, alone and stacked
// on Proximity Neighbor Selection (PNS) — the paper's claim that PROP
// composes with protocol-specific proximity methods because it never
// touches the logical structure.
//
//	go run ./examples/chord-optimize
package main

import (
	"fmt"
	"log"

	"repro/internal/chord"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/netsim"
	"repro/internal/rng"
	"repro/internal/satmatch"
)

func main() {
	seedWorld := uint64(2)
	const n = 400
	const lookups = 800

	fmt.Printf("%-18s  %-14s  %-12s  %s\n", "configuration", "stretch", "avg hops", "lookups OK")
	for _, cfg := range []struct {
		name string
		pns  bool
		prop bool
		sat  bool
	}{
		{name: "plain Chord"},
		{name: "PNS", pns: true},
		{name: "PROP-G", prop: true},
		{name: "PNS + PROP-G", pns: true, prop: true},
		{name: "SAT-Match", sat: true},
	} {
		// Fresh but identical world per configuration (same seed).
		r := rng.New(seedWorld)
		net, err := netsim.Generate(netsim.TSLarge(), r)
		if err != nil {
			log.Fatal(err)
		}
		oracle := netsim.NewOracle(net)
		hosts := append([]int(nil), net.StubHosts...)
		r.Shuffle(len(hosts), func(i, j int) { hosts[i], hosts[j] = hosts[j], hosts[i] })
		ringCfg := chord.DefaultConfig()
		ringCfg.PNS = cfg.pns
		ring, err := chord.Build(hosts[:n], ringCfg, oracle.Latency, r)
		if err != nil {
			log.Fatal(err)
		}

		if cfg.prop {
			// PROP-G on a DHT exchanges node identifiers: the ring, the
			// finger tables, and every key's owner are all untouched —
			// only which machine stands at each identifier changes.
			p, err := core.New(ring.O, core.DefaultConfig(core.PROPG), r.Split())
			if err != nil {
				log.Fatal(err)
			}
			e := event.New()
			p.Start(e)
			e.RunUntil(30 * 60000)
			// Stabilization: PNS fingers re-pick their nearest candidates
			// against the post-exchange host mapping.
			ring.Refresh(oracle.Latency)
		}
		if cfg.sat {
			// The §2 baseline: relocation jumps. Same quality ballpark as
			// PROP-G, but every jump mints a fresh identifier and moves
			// keyspace ownership.
			p, err := satmatch.New(ring, satmatch.DefaultConfig(), oracle.Latency, r.Split())
			if err != nil {
				log.Fatal(err)
			}
			e := event.New()
			p.Start(e)
			e.RunUntil(30 * 60000)
			defer fmt.Printf("\nSAT-Match minted %d fresh identifiers; PROP-G minted none.\n", p.Relocations)
		}

		// Measure routing stretch: routed latency over direct latency.
		wr := rng.New(99)
		sumStretch, sumHops, ok := 0.0, 0, 0
		for i := 0; i < lookups; i++ {
			src := ring.O.AliveSlots()[wr.Intn(n)]
			key := chord.RandomKey(wr)
			res, err := ring.Lookup(src, key, nil)
			if err != nil || res.Owner == src {
				continue
			}
			direct := oracle.Latency(ring.O.HostOf(src), ring.O.HostOf(res.Owner))
			if direct <= 0 {
				continue
			}
			sumStretch += res.Latency / direct
			sumHops += res.Hops
			ok++
		}
		fmt.Printf("%-18s  %-14.2f  %-12.1f  %d/%d\n",
			cfg.name, sumStretch/float64(ok), float64(sumHops)/float64(ok), ok, lookups)
	}
	fmt.Println("\nexpected: every optimizer beats plain; PNS saturates Chord's proximity headroom,")
	fmt.Println("so PNS + PROP-G lands at PNS-level quality (see EXPERIMENTS.md); SAT-Match matches")
	fmt.Println("PROP-G's ballpark but pays for it in minted identifiers and keyspace churn.")
}
