// File-sharing walkthrough: the paper's §1 motivation end to end. A
// Gnutella community shares Zipf-popular files; queries flood until the
// first replica answers. PROP-O reorganizes who is logically adjacent to
// whom — never touching who stores what, nor anyone's connection count —
// and every search gets cheaper.
//
//	go run ./examples/filesearch
package main

import (
	"fmt"
	"log"

	"repro/internal/content"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/gnutella"
	"repro/internal/netsim"
	"repro/internal/rng"
)

func main() {
	r := rng.New(17)
	net, err := netsim.Generate(netsim.TSLarge(), r)
	if err != nil {
		log.Fatal(err)
	}
	oracle := netsim.NewOracle(net)
	hosts := append([]int(nil), net.StubHosts...)
	r.Shuffle(len(hosts), func(i, j int) { hosts[i], hosts[j] = hosts[j], hosts[i] })
	o, err := gnutella.Build(hosts[:300], gnutella.DefaultConfig(), oracle.Latency, r)
	if err != nil {
		log.Fatal(err)
	}

	// A shared catalog: 400 items, 3 replicas each, Zipf-skewed popularity.
	catalog, err := content.Place(o, content.Config{Items: 400, Replicas: 3, ZipfS: 0.8}, r.Split())
	if err != nil {
		log.Fatal(err)
	}
	before, failed := catalog.MeanSearchLatency(o, 600, nil, rng.New(1))
	fmt.Printf("catalog: %d items x 3 replicas on %d machines\n", catalog.Items(), o.NumAlive())
	fmt.Printf("before PROP-O: mean first-replica search %.1f ms (%d failed)\n", before, failed)

	// PROP-O: degree-preserving neighbor trades. Nobody's storage, nobody's
	// connection count, nobody's identity changes — only who sits next to
	// whom in the overlay.
	p, err := core.New(o, core.DefaultConfig(core.PROPO), r.Split())
	if err != nil {
		log.Fatal(err)
	}
	e := event.New()
	p.Start(e)
	e.RunUntil(30 * 60000)

	after, failed2 := catalog.MeanSearchLatency(o, 600, nil, rng.New(1))
	fmt.Printf("after  PROP-O: mean first-replica search %.1f ms (%d failed)\n", after, failed2)
	fmt.Printf("saving: %.0f%%  (exchanges=%d, m=%d, degrees preserved, connectivity=%v)\n",
		(1-after/before)*100, p.Counters.Exchanges, p.M(), o.Connected())
}
