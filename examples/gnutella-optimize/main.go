// Unstructured-overlay walkthrough: the same scrambled Gnutella overlay
// optimized three ways — PROP-G (position swaps), PROP-O (degree-preserving
// neighbor trades), and the LTM baseline (free cut-and-add) — and compared
// on lookup latency, degree preservation, and message overhead.
//
//	go run ./examples/gnutella-optimize
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/gnutella"
	"repro/internal/ltm"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/overlay"
	"repro/internal/rng"
	"repro/internal/workload"
)

const simMinutes = 30

func main() {
	r := rng.New(7)
	net, err := netsim.Generate(netsim.TSLarge(), r)
	if err != nil {
		log.Fatal(err)
	}
	oracle := netsim.NewOracle(net)
	hosts := append([]int(nil), net.StubHosts...)
	r.Shuffle(len(hosts), func(i, j int) { hosts[i], hosts[j] = hosts[j], hosts[i] })
	base, err := gnutella.Build(hosts[:400], gnutella.DefaultConfig(), oracle.Latency, r)
	if err != nil {
		log.Fatal(err)
	}
	lookups, err := workload.Uniform(base.AliveSlots(), 500, r.Split())
	if err != nil {
		log.Fatal(err)
	}
	baseLat, _ := metrics.MeanLookupLatency(lookups, metrics.FloodEval(base, nil))
	fmt.Printf("%-12s  %-12s  %-14s  %-14s  %s\n",
		"optimizer", "lookup (ms)", "vs baseline", "degrees kept", "probe msgs")
	fmt.Printf("%-12s  %-12.1f  %-14s  %-14s  %s\n", "none", baseLat, "1.00", "yes", "0")

	show := func(name string, o *overlay.Overlay, kept bool, msgs uint64) {
		lat, _ := metrics.MeanLookupLatency(lookups, metrics.FloodEval(o, nil))
		keptStr := "no"
		if kept {
			keptStr = "yes"
		}
		fmt.Printf("%-12s  %-12.1f  %-14.2f  %-14s  %d\n", name, lat, lat/baseLat, keptStr, msgs)
	}

	sameDegrees := func(a, b *overlay.Overlay) bool {
		da, db := a.Logical.DegreeSequence(), b.Logical.DegreeSequence()
		if len(da) != len(db) {
			return false
		}
		for i := range da {
			if da[i] != db[i] {
				return false
			}
		}
		return true
	}

	// PROP-G.
	{
		o := base.Clone()
		p, err := core.New(o, core.DefaultConfig(core.PROPG), r.Split())
		if err != nil {
			log.Fatal(err)
		}
		e := event.New()
		p.Start(e)
		e.RunUntil(simMinutes * 60000)
		show("PROP-G", o, sameDegrees(base, o), p.Counters.ProbeMessages())
	}

	// PROP-O with the default m = δ(G).
	{
		o := base.Clone()
		p, err := core.New(o, core.DefaultConfig(core.PROPO), r.Split())
		if err != nil {
			log.Fatal(err)
		}
		e := event.New()
		p.Start(e)
		e.RunUntil(simMinutes * 60000)
		show(fmt.Sprintf("PROP-O m=%d", p.M()), o, sameDegrees(base, o), p.Counters.ProbeMessages())
	}

	// LTM baseline: effective on latency but rewires degrees freely.
	{
		o := base.Clone()
		p, err := ltm.New(o, ltm.DefaultConfig(), r.Split())
		if err != nil {
			log.Fatal(err)
		}
		e := event.New()
		p.Start(e)
		e.RunUntil(simMinutes * 60000)
		show("LTM", o, sameDegrees(base, o), p.Counters.ProbeMessages())
	}
}
