// Heterogeneity walkthrough (the Fig. 7 scenario in miniature): a bimodal
// population of fast and slow machines, lookups increasingly targeted at
// the fast ones, and the payoff of PROP-O's degree preservation — the fast
// hubs stay hubs, so queries to them stay cheap.
//
//	go run ./examples/heterogeneous
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/gnutella"
	"repro/internal/hetero"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/overlay"
	"repro/internal/rng"
	"repro/internal/workload"
)

func main() {
	r := rng.New(21)
	net, err := netsim.Generate(netsim.TSLarge(), r)
	if err != nil {
		log.Fatal(err)
	}
	oracle := netsim.NewOracle(net)
	hosts := append([]int(nil), net.StubHosts...)
	r.Shuffle(len(hosts), func(i, j int) { hosts[i], hosts[j] = hosts[j], hosts[i] })
	base, err := gnutella.Build(hosts[:400], gnutella.DefaultConfig(), oracle.Latency, r)
	if err != nil {
		log.Fatal(err)
	}

	// 20% of machines are fast (1 ms processing); the rest are slow
	// (100 ms). The fast ones are the overlay hubs, as in deployed systems.
	model, err := hetero.AssignByDegree(base, hetero.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fastHosts := model.FastHosts()
	fastSet := map[int]bool{}
	for _, h := range fastHosts {
		fastSet[h] = true
	}
	var slowHosts []int
	for _, h := range base.Hosts() {
		if !fastSet[h] {
			slowHosts = append(slowHosts, h)
		}
	}
	fmt.Printf("population: %d fast machines (1 ms), %d slow (100 ms)\n\n",
		len(fastHosts), len(slowHosts))

	optimize := func(o *overlay.Overlay, policy core.Policy) {
		p, err := core.New(o, core.DefaultConfig(policy), r.Split())
		if err != nil {
			log.Fatal(err)
		}
		e := event.New()
		p.Start(e)
		e.RunUntil(15 * 60000)
	}
	propG := base.Clone()
	optimize(propG, core.PROPG)
	propO := base.Clone()
	optimize(propO, core.PROPO)

	// Sweep the fraction of lookups that target fast machines.
	fmt.Printf("%-22s  %10s  %10s  %10s\n", "fraction of fast dsts", "none (ms)", "PROP-G", "PROP-O")
	wr := r.Split()
	for _, frac := range []float64{0, 0.5, 1.0} {
		hostLookups, err := workload.Skewed(base.Hosts(), fastHosts, slowHosts, frac, 400, wr)
		if err != nil {
			log.Fatal(err)
		}
		eval := func(o *overlay.Overlay) float64 {
			// Map the host-level workload onto each overlay's current
			// slot assignment; the machine's speed travels with it.
			slotModel := remodel(o, fastSet)
			var ls []workload.Lookup
			for _, hl := range hostLookups {
				s, d := o.SlotOfHost(hl.Src), o.SlotOfHost(hl.Dst)
				if s >= 0 && d >= 0 && s != d {
					ls = append(ls, workload.Lookup{Src: s, Dst: d})
				}
			}
			mean, _ := metrics.MeanLookupLatency(ls, metrics.FloodEval(o, slotModel))
			return mean
		}
		fmt.Printf("%-22.1f  %10.1f  %10.1f  %10.1f\n", frac, eval(base), eval(propG), eval(propO))
	}
	fmt.Println("\nexpected: PROP-O pulls ahead of PROP-G as lookups concentrate on fast machines,")
	fmt.Println("because degree preservation keeps the fast hubs well connected.")
}

// remodel returns a processing-delay function for o given the fast host set.
func remodel(o *overlay.Overlay, fastHosts map[int]bool) overlay.ProcDelayFunc {
	cfg := hetero.DefaultConfig()
	return func(slot int) float64 {
		if fastHosts[o.HostOf(slot)] {
			return cfg.FastDelayMS
		}
		return cfg.SlowDelayMS
	}
}
