// Package repro's root benchmarks regenerate every figure and analysis of
// the paper's evaluation, one benchmark per artifact, at a reduced scale
// suitable for `go test -bench`. Each benchmark reports the headline
// quantity of its figure as a custom metric so regressions in reproduction
// quality — not just speed — are visible:
//
//	BenchmarkFig5a   final-vs-initial latency ratio of the nhops=2 curve
//	BenchmarkFig5b   same ratio for the largest system size
//	BenchmarkFig5c   ts-large latency drop minus ts-small drop (ms)
//	BenchmarkFig6a   final stretch of the nhops=2 curve
//	BenchmarkFig6b   final stretch for the largest size
//	BenchmarkFig6c   ts-large stretch drop (topology contrast asserted in tests)
//	BenchmarkFig7    LTM-minus-best-PROP-O delay ratio gap at x=1
//	BenchmarkOverhead  PROP-G / PROP-O(m=1) measured message cost ratio
//	BenchmarkChurn   peak-to-tail probe-rate ratio around the churn window
//	BenchmarkCombo   Chord stretch: plain minus (PNS + PROP-G)
//
// Run everything:  go test -bench=. -benchmem
// Full paper scale is driven by cmd/propsim, not the benchmarks.
package main

import (
	"math"
	"strings"
	"testing"

	"repro/internal/experiment"
	"repro/internal/stats"
)

// benchOpt keeps benchmark iterations affordable while exercising every
// code path of the full experiment.
func benchOpt(i int) experiment.Options {
	return experiment.Options{Seed: uint64(i + 1), Trials: 1, Scale: 0.15}
}

func runExp(b *testing.B, id string, i int) *experiment.Result {
	b.Helper()
	res, err := experiment.Run(id, benchOpt(i))
	if err != nil {
		b.Fatalf("%s: %v", id, err)
	}
	return res
}

// runExpScaled is runExp at a custom scale, for benches whose headline
// metric is a contrast that drowns in noise at the smallest scale.
func runExpScaled(b *testing.B, id string, i int, scale float64) *experiment.Result {
	b.Helper()
	opt := benchOpt(i)
	opt.Scale = scale
	res, err := experiment.Run(id, opt)
	if err != nil {
		b.Fatalf("%s: %v", id, err)
	}
	return res
}

func findSeries(b *testing.B, res *experiment.Result, label string) stats.Series {
	b.Helper()
	for _, s := range res.Series {
		if s.Label == label {
			return s
		}
	}
	b.Fatalf("%s: series %q not found", res.ID, label)
	return stats.Series{}
}

func findSeriesPrefix(b *testing.B, res *experiment.Result, prefix string) stats.Series {
	b.Helper()
	for _, s := range res.Series {
		if strings.HasPrefix(s.Label, prefix) {
			return s
		}
	}
	b.Fatalf("%s: series with prefix %q not found", res.ID, prefix)
	return stats.Series{}
}

func BenchmarkFig5a(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		res := runExp(b, "fig5a", i)
		s := findSeries(b, res, "n=1000, nhops=2")
		ratio = s.Final() / s.Y[0]
	}
	b.ReportMetric(ratio, "final/initial-latency")
}

func BenchmarkFig5b(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		res := runExp(b, "fig5b", i)
		s := findSeries(b, res, "n=2400, nhops=2")
		ratio = s.Final() / s.Y[0]
	}
	b.ReportMetric(ratio, "final/initial-latency")
}

func BenchmarkFig5c(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		res := runExpScaled(b, "fig5c", i, 0.3)
		l := findSeries(b, res, "ts-large")
		s := findSeries(b, res, "ts-small")
		gap = (l.Y[0] - l.Final()) - (s.Y[0] - s.Final())
	}
	b.ReportMetric(gap, "large-vs-small-drop-ms")
}

func BenchmarkFig6a(b *testing.B) {
	var final float64
	for i := 0; i < b.N; i++ {
		res := runExp(b, "fig6a", i)
		final = findSeries(b, res, "n=1000, nhops=2").Final()
	}
	b.ReportMetric(final, "final-stretch")
}

func BenchmarkFig6b(b *testing.B) {
	var final float64
	for i := 0; i < b.N; i++ {
		res := runExp(b, "fig6b", i)
		final = findSeries(b, res, "n=2400, nhops=2").Final()
	}
	b.ReportMetric(final, "final-stretch")
}

func BenchmarkFig6c(b *testing.B) {
	// The cross-topology stretch gap is ~0.1 at full scale — pure noise in
	// a single reduced-scale trial — so the bench reports ts-large's own
	// stretch drop; the topology contrast is asserted in the latency domain
	// (TestFig5cShape) and recorded at full scale in EXPERIMENTS.md.
	var drop float64
	for i := 0; i < b.N; i++ {
		res := runExpScaled(b, "fig6c", i, 0.3)
		l := findSeries(b, res, "ts-large")
		drop = l.Y[0] - l.Final()
	}
	b.ReportMetric(drop, "ts-large-stretch-drop")
}

func BenchmarkFig7(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		res := runExp(b, "fig7", i)
		ltm := findSeries(b, res, "LTM").Final()
		best := math.Inf(1)
		for _, m := range []string{"PROP-O (m=1)", "PROP-O (m=2)", "PROP-O (m=4)"} {
			if f := findSeries(b, res, m).Final(); f < best {
				best = f
			}
		}
		gap = ltm - best
	}
	b.ReportMetric(gap, "ltm-minus-propo-at-x1")
}

func BenchmarkOverhead(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		res := runExp(b, "overhead", i)
		measured := findSeriesPrefix(b, res, "measured")
		ratio = measured.Y[0] / measured.Y[1] // PROP-G over PROP-O m=1
	}
	b.ReportMetric(ratio, "propg/propo-msg-cost")
}

func BenchmarkChurn(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		res := runExp(b, "churn", i)
		probes := findSeries(b, res, "probes/node/min")
		peak := 0.0
		for j, x := range probes.X {
			if x > 20 && x <= 36 && probes.Y[j] > peak {
				peak = probes.Y[j]
			}
		}
		tail := probes.Final()
		if tail > 0 {
			ratio = peak / tail
		}
	}
	b.ReportMetric(ratio, "probe-peak/tail")
}

func BenchmarkCombo(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		res := runExp(b, "combo", i)
		chordSeries := findSeries(b, res, "Chord")
		gain = chordSeries.Y[0] - chordSeries.Y[3] // plain minus PNS+PROP-G
	}
	b.ReportMetric(gain, "chord-stretch-gain")
}

// Extension benchmarks (beyond the paper's figures).

func BenchmarkPastry(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		res := runExp(b, "pastry", i)
		s := findSeries(b, res, "Pastry")
		gain = s.Y[0] - s.Y[3] // plain minus combined
	}
	b.ReportMetric(gain, "pastry-stretch-gain")
}

func BenchmarkTraffic(b *testing.B) {
	var saving float64
	for i := 0; i < b.N; i++ {
		res := runExp(b, "traffic", i)
		tr := findSeries(b, res, "traffic (ms per query)")
		saving = 1 - tr.Y[1]/tr.Y[0] // PROP-G ms-traffic saving
	}
	b.ReportMetric(saving, "propg-traffic-saving")
}

func BenchmarkInflight(b *testing.B) {
	var correct float64
	for i := 0; i < b.N; i++ {
		res := runExp(b, "inflight", i)
		correct = findSeries(b, res, "correct fraction").Final() // hostile variant
	}
	b.ReportMetric(correct, "hostile-correct-fraction")
}

func BenchmarkNoise(b *testing.B) {
	var degradation float64
	for i := 0; i < b.N; i++ {
		res := runExp(b, "noise", i)
		lat := findSeries(b, res, "final mean link latency (ms)")
		degradation = lat.YAt(1.0) / lat.YAt(0)
	}
	b.ReportMetric(degradation, "sigma1-latency-ratio")
}

func BenchmarkWarmupAblation(b *testing.B) {
	var gainPerProbe float64
	for i := 0; i < b.N; i++ {
		res := runExp(b, "warmup", i)
		lat := findSeries(b, res, "final mean link latency (ms)")
		gainPerProbe = (lat.YAt(1) - lat.YAt(10)) / 9
	}
	b.ReportMetric(gainPerProbe, "ms-gain-per-warmup-probe")
}

func BenchmarkMinVarAblation(b *testing.B) {
	var penalty float64
	for i := 0; i < b.N; i++ {
		res := runExp(b, "minvar", i)
		lat := findSeries(b, res, "final mean link latency (ms)")
		penalty = lat.YAt(400) - lat.YAt(0)
	}
	b.ReportMetric(penalty, "minvar400-latency-penalty-ms")
}

func BenchmarkChordChurn(b *testing.B) {
	var correct float64
	for i := 0; i < b.N; i++ {
		res := runExp(b, "chordchurn", i)
		correct = findSeries(b, res, "correct fraction").Final()
	}
	b.ReportMetric(correct, "post-churn-correct-fraction")
}

func BenchmarkKademlia(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		res := runExp(b, "kademlia", i)
		s := findSeries(b, res, "Kademlia")
		gain = s.Y[0] - s.Y[3]
	}
	b.ReportMetric(gain, "kademlia-stretch-gain")
}

func BenchmarkSATMatch(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		res := runExp(b, "satmatch", i)
		sat := findSeries(b, res, "SAT-Match")
		prop := findSeries(b, res, "PROP-G")
		gap = sat.Final() - prop.Final() // negative: SAT-Match ahead on quality
	}
	b.ReportMetric(gap, "satmatch-minus-propg-stretch")
}

func BenchmarkReplication(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		res := runExp(b, "replication", i)
		ratio = findSeries(b, res, "PROP-G/unoptimized").Final()
	}
	b.ReportMetric(ratio, "propg-search-ratio-at-max-replication")
}
