// Command proptrace runs one PROP optimization end to end and streams a
// human-readable trace of every executed peer-exchange, followed by a
// before/after summary — the quickest way to watch the protocol work.
//
// Usage:
//
//	proptrace [-policy G|O] [-n 300] [-nhops 2] [-m 0] [-minutes 30]
//	          [-preset ts-large] [-seed 1] [-quiet]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/gnutella"
	"repro/internal/netsim"
	"repro/internal/rng"
)

func main() {
	var (
		policy  = flag.String("policy", "G", "exchange policy: G (swap positions) or O (trade m neighbors)")
		n       = flag.Int("n", 300, "overlay size")
		nhops   = flag.Int("nhops", 2, "probe walk TTL")
		m       = flag.Int("m", 0, "PROP-O exchange size (0 = minimum degree)")
		minutes = flag.Float64("minutes", 30, "simulated optimization time")
		preset  = flag.String("preset", "ts-large", "physical topology: ts-large | ts-small")
		seed    = flag.Uint64("seed", 1, "deterministic seed")
		quiet   = flag.Bool("quiet", false, "suppress the per-exchange trace")
	)
	flag.Parse()

	cfg := netsim.TSLarge()
	if *preset == "ts-small" {
		cfg = netsim.TSSmall()
	}
	r := rng.New(*seed)
	net, err := netsim.Generate(cfg, r)
	if err != nil {
		fail(err)
	}
	oracle := netsim.NewOracle(net)
	hosts := append([]int(nil), net.StubHosts...)
	r.Shuffle(len(hosts), func(i, j int) { hosts[i], hosts[j] = hosts[j], hosts[i] })
	if *n > len(hosts) {
		*n = len(hosts)
	}
	o, err := gnutella.Build(hosts[:*n], gnutella.DefaultConfig(), oracle.Latency, r)
	if err != nil {
		fail(err)
	}

	var pol core.Policy
	switch *policy {
	case "G", "g":
		pol = core.PROPG
	case "O", "o":
		pol = core.PROPO
	default:
		fail(fmt.Errorf("unknown policy %q", *policy))
	}
	pcfg := core.DefaultConfig(pol)
	pcfg.NHops = *nhops
	pcfg.M = *m
	p, err := core.New(o, pcfg, r.Split())
	if err != nil {
		fail(err)
	}

	phys := net.MeanLinkLatency()
	fmt.Printf("%s\n", net)
	fmt.Printf("overlay: %d peers, %d links, mean link %.1f ms, stretch %.2f\n",
		o.NumAlive(), o.Logical.NumEdges(), o.MeanLinkLatency(), o.Stretch(phys))
	fmt.Printf("running %s for %.0f simulated minutes (nhops=%d, m=%d)\n\n",
		pol, *minutes, pcfg.NHops, p.M())

	if !*quiet {
		p.Trace = func(ev core.ExchangeEvent) {
			fmt.Printf("t=%7.1fmin  exchange %4d <-> %-4d  Var=%8.1f ms  moved=%d\n",
				float64(ev.At)/60000, ev.U, ev.V, ev.Var, ev.Moved)
		}
	}
	e := event.New()
	p.Start(e)
	e.RunUntil(event.Time(*minutes * 60000))

	fmt.Printf("\nafter:   mean link %.1f ms, stretch %.2f\n", o.MeanLinkLatency(), o.Stretch(phys))
	fmt.Printf("probes=%d exchanges=%d rejected=%d walk-failures=%d\n",
		p.Counters.Probes, p.Counters.Exchanges, p.Counters.Rejected, p.Counters.WalkFailures)
	fmt.Printf("messages: walk=%d measure=%d notify=%d (%.1f probe msgs/adjustment)\n",
		p.Counters.WalkMessages, p.Counters.MeasureMessages, p.Counters.NotifyMessages,
		p.Counters.MessagesPerAdjustment())
	if !o.Connected() {
		fail(fmt.Errorf("overlay disconnected — invariant violation"))
	}
	fmt.Println("overlay connectivity: intact")
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "proptrace: %v\n", err)
	os.Exit(1)
}
