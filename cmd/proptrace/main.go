// Command proptrace runs one PROP optimization end to end and streams a
// human-readable trace of every executed peer-exchange, followed by a
// before/after summary — the quickest way to watch the protocol work.
//
// Usage:
//
//	proptrace [-policy G|O] [-n 300] [-nhops 2] [-m 0] [-minutes 30]
//	          [-preset ts-large] [-seed 1] [-quiet]
//
// Two subcommands expose the audit/replay subsystem (internal/audit):
//
//	proptrace record [-out trace.jsonl] [-policy PROP-G|PROP-O] [-n 48]
//	          [-nhops 2] [-m 0] [-minutes 30] [-preset small|large]
//	          [-seed 1] [-interval 0] [-fault ghost-edge|drop-edge]
//	          [-fault-after 0]
//	    runs one audited session, streams every protocol event to a
//	    replayable JSONL trace, and reports the invariant audit. Exits 1
//	    when the audit found violations (e.g. under an injected fault).
//
//	proptrace replay [-shrink] trace.jsonl
//	    re-runs the session recorded in the trace header and verifies the
//	    event stream is byte-for-byte reproducible; -shrink additionally
//	    minimizes a violating session to the smallest event-count bound
//	    that still reproduces the violation.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/gnutella"
	"repro/internal/netsim"
	"repro/internal/rng"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "record":
			runRecord(os.Args[2:])
			return
		case "replay":
			runReplay(os.Args[2:])
			return
		}
	}
	runLegacy()
}

// runRecord executes one audited session and writes the replayable trace.
func runRecord(args []string) {
	fs := flag.NewFlagSet("proptrace record", flag.ExitOnError)
	var (
		out        = fs.String("out", "trace.jsonl", "trace output file (- for stdout)")
		policy     = fs.String("policy", "PROP-G", "exchange policy: PROP-G or PROP-O")
		n          = fs.Int("n", 48, "overlay size")
		nhops      = fs.Int("nhops", 2, "probe walk TTL")
		m          = fs.Int("m", 0, "PROP-O exchange size (0 = minimum degree)")
		minutes    = fs.Float64("minutes", 30, "simulated optimization time")
		preset     = fs.String("preset", "small", "physical topology: small | large")
		seed       = fs.Uint64("seed", 1, "deterministic seed")
		interval   = fs.Int("interval", 0, "invariant sampling interval (0 = build default)")
		fault      = fs.String("fault", "", "inject a fault: ghost-edge | drop-edge")
		faultAfter = fs.Int("fault-after", 0, "inject the fault at this exchange index")
	)
	fs.Parse(args)

	cfg := audit.SessionConfig{
		Seed: *seed, Nodes: *n, Policy: *policy, NHops: *nhops, M: *m,
		Minutes: *minutes, Preset: *preset, Interval: *interval,
		Fault: *fault, FaultAfter: *faultAfter,
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		w = f
	}
	sink := audit.NewSink(w, cfg)
	a, err := audit.RunSession(cfg, sink.Emit)
	if err != nil {
		fail(err)
	}
	if err := sink.Close(); err != nil {
		fail(err)
	}

	fmt.Fprintf(os.Stderr, "proptrace: %s\n", a.Summary())
	if *out != "-" {
		fmt.Fprintf(os.Stderr, "proptrace: wrote %d records to %s\n", a.Events(), *out)
	}
	if vs := a.Violations(); len(vs) > 0 {
		for _, v := range vs {
			fmt.Fprintf(os.Stderr, "proptrace: VIOLATION %s\n", v)
		}
		fmt.Fprintf(os.Stderr, "proptrace: replay with `proptrace replay -shrink %s` for a minimal reproducer\n", *out)
		os.Exit(1)
	}
}

// runReplay re-runs a recorded session and checks reproducibility.
func runReplay(args []string) {
	fs := flag.NewFlagSet("proptrace replay", flag.ExitOnError)
	shrink := fs.Bool("shrink", false, "minimize a violating session to the smallest reproducing event bound")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fail(fmt.Errorf("usage: proptrace replay [-shrink] trace.jsonl"))
	}

	f, err := os.Open(fs.Arg(0))
	if err != nil {
		fail(err)
	}
	defer f.Close()
	hdr, recs, err := audit.ReadTrace(f)
	if err != nil {
		fail(err)
	}
	fmt.Printf("trace: %d records, session %+v\n", len(recs), hdr.Config)

	if err := audit.Replay(hdr.Config, recs); err != nil {
		fail(err)
	}
	fmt.Println("replay: event stream reproduced exactly")

	a, err := audit.RunSession(hdr.Config, nil)
	if err != nil {
		fail(err)
	}
	fmt.Printf("audit:  %s\n", a.Summary())
	if len(a.Violations()) == 0 {
		if *shrink {
			fmt.Println("shrink: session is clean, nothing to minimize")
		}
		return
	}
	if !*shrink {
		os.Exit(1)
	}
	small, v, err := audit.Shrink(hdr.Config, "")
	if err != nil {
		fail(err)
	}
	fmt.Printf("shrink: violation %q reproduces within the first %d engine steps\n", v.Name, small.MaxEvents)
	fmt.Printf("shrink: minimal config %+v\n", small)
	os.Exit(1)
}

// runLegacy is the original human-readable single-run trace mode.
func runLegacy() {
	var (
		policy  = flag.String("policy", "G", "exchange policy: G (swap positions) or O (trade m neighbors)")
		n       = flag.Int("n", 300, "overlay size")
		nhops   = flag.Int("nhops", 2, "probe walk TTL")
		m       = flag.Int("m", 0, "PROP-O exchange size (0 = minimum degree)")
		minutes = flag.Float64("minutes", 30, "simulated optimization time")
		preset  = flag.String("preset", "ts-large", "physical topology: ts-large | ts-small")
		seed    = flag.Uint64("seed", 1, "deterministic seed")
		quiet   = flag.Bool("quiet", false, "suppress the per-exchange trace")
	)
	flag.Parse()

	cfg := netsim.TSLarge()
	if *preset == "ts-small" {
		cfg = netsim.TSSmall()
	}
	r := rng.New(*seed)
	net, err := netsim.Generate(cfg, r)
	if err != nil {
		fail(err)
	}
	oracle := netsim.NewOracle(net)
	hosts := append([]int(nil), net.StubHosts...)
	r.Shuffle(len(hosts), func(i, j int) { hosts[i], hosts[j] = hosts[j], hosts[i] })
	if *n > len(hosts) {
		*n = len(hosts)
	}
	o, err := gnutella.Build(hosts[:*n], gnutella.DefaultConfig(), oracle.Latency, r)
	if err != nil {
		fail(err)
	}

	var pol core.Policy
	switch *policy {
	case "G", "g":
		pol = core.PROPG
	case "O", "o":
		pol = core.PROPO
	default:
		fail(fmt.Errorf("unknown policy %q", *policy))
	}
	pcfg := core.DefaultConfig(pol)
	pcfg.NHops = *nhops
	pcfg.M = *m
	p, err := core.New(o, pcfg, r.Split())
	if err != nil {
		fail(err)
	}

	phys := net.MeanLinkLatency()
	fmt.Printf("%s\n", net)
	fmt.Printf("overlay: %d peers, %d links, mean link %.1f ms, stretch %.2f\n",
		o.NumAlive(), o.Logical.NumEdges(), o.MeanLinkLatency(), o.Stretch(phys))
	fmt.Printf("running %s for %.0f simulated minutes (nhops=%d, m=%d)\n\n",
		pol, *minutes, pcfg.NHops, p.M())

	if !*quiet {
		p.Trace = func(ev core.ExchangeEvent) {
			fmt.Printf("t=%7.1fmin  exchange %4d <-> %-4d  Var=%8.1f ms  moved=%d\n",
				float64(ev.At)/60000, ev.U, ev.V, ev.Var, ev.Moved)
		}
	}
	e := event.New()
	p.Start(e)
	e.RunUntil(event.Time(*minutes * 60000))

	fmt.Printf("\nafter:   mean link %.1f ms, stretch %.2f\n", o.MeanLinkLatency(), o.Stretch(phys))
	fmt.Printf("probes=%d exchanges=%d rejected=%d walk-failures=%d\n",
		p.Counters.Probes, p.Counters.Exchanges, p.Counters.Rejected, p.Counters.WalkFailures)
	fmt.Printf("messages: walk=%d measure=%d notify=%d (%.1f probe msgs/adjustment)\n",
		p.Counters.WalkMessages, p.Counters.MeasureMessages, p.Counters.NotifyMessages,
		p.Counters.MessagesPerAdjustment())
	if !o.Connected() {
		fail(fmt.Errorf("overlay disconnected — invariant violation"))
	}
	fmt.Println("overlay connectivity: intact")
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "proptrace: %v\n", err)
	os.Exit(1)
}
