package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeBaseline(t *testing.T, rep Report) string {
	t.Helper()
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "base.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestDiffBaselineThresholds(t *testing.T) {
	base := Report{Results: []Result{
		{Name: "BenchmarkA", NsPerOp: 1000, AllocsPerOp: 10},
		{Name: "BenchmarkZeroAlloc", NsPerOp: 500, AllocsPerOp: 0},
		{Name: "BenchmarkOnlyInBaseline", NsPerOp: 42, AllocsPerOp: 1},
	}}
	path := writeBaseline(t, base)

	cases := []struct {
		name      string
		cur       []Result
		allocMax  float64
		nsMax     float64
		regressed bool
		wants     []string
	}{
		{
			name:      "within-threshold",
			cur:       []Result{{Name: "BenchmarkA", NsPerOp: 1100, AllocsPerOp: 12}},
			allocMax:  1.25,
			regressed: false,
			wants:     []string{"ok", "missing from this run"},
		},
		{
			name:      "alloc-regression",
			cur:       []Result{{Name: "BenchmarkA", NsPerOp: 1000, AllocsPerOp: 20}},
			allocMax:  1.25,
			regressed: true,
			wants:     []string{"ALLOC REGRESSION"},
		},
		{
			name:      "ns-regression-when-enabled",
			cur:       []Result{{Name: "BenchmarkA", NsPerOp: 5000, AllocsPerOp: 10}},
			allocMax:  1.25,
			nsMax:     3,
			regressed: true,
			wants:     []string{"NS REGRESSION"},
		},
		{
			name:      "ns-ignored-by-default",
			cur:       []Result{{Name: "BenchmarkA", NsPerOp: 5000, AllocsPerOp: 10}},
			allocMax:  1.25,
			regressed: false,
		},
		{
			name:      "zero-alloc-baseline-gains-alloc",
			cur:       []Result{{Name: "BenchmarkZeroAlloc", NsPerOp: 500, AllocsPerOp: 1}},
			allocMax:  1.25,
			regressed: true,
			wants:     []string{"ALLOC REGRESSION"},
		},
		{
			name:      "new-benchmark-not-fatal",
			cur:       []Result{{Name: "BenchmarkBrandNew", NsPerOp: 1, AllocsPerOp: 999}},
			allocMax:  1.25,
			regressed: false,
			wants:     []string{"new (no baseline entry)"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			got, err := diffBaseline(&buf, Report{Results: tc.cur}, path, tc.allocMax, tc.nsMax)
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.regressed {
				t.Fatalf("regressed = %v, want %v\n%s", got, tc.regressed, buf.String())
			}
			for _, w := range tc.wants {
				if !strings.Contains(buf.String(), w) {
					t.Fatalf("diff output missing %q:\n%s", w, buf.String())
				}
			}
		})
	}
}

func TestDiffBaselineMissingFile(t *testing.T) {
	if _, err := diffBaseline(&bytes.Buffer{}, Report{}, filepath.Join(t.TempDir(), "nope.json"), 1.25, 0); err == nil {
		t.Fatal("missing baseline file accepted")
	}
}

func TestParseBench(t *testing.T) {
	r, ok := parseBench("BenchmarkALTrackerUpdateExchange4096-8 \t 5\t  10962367 ns/op\t  207931 B/op\t      64 allocs/op")
	if !ok {
		t.Fatal("line not parsed")
	}
	if r.Name != "BenchmarkALTrackerUpdateExchange4096" || r.Iterations != 5 ||
		r.NsPerOp != 10962367 || r.BytesPerOp != 207931 || r.AllocsPerOp != 64 {
		t.Fatalf("parsed %+v", r)
	}
	if _, ok := parseBench("PASS"); ok {
		t.Fatal("non-benchmark line parsed")
	}
}
