// Command benchjson converts `go test -bench` output on stdin into a JSON
// document on stdout, so CI can archive benchmark runs as machine-readable
// artifacts (e.g. BENCH_PR2.json) and humans can diff them across commits.
//
// Usage:
//
//	go test ./internal/netsim -run '^$' -bench . -benchmem | benchjson -label after > BENCH.json
//
// Lines that are not benchmark results (goos/pkg headers, PASS/ok) are
// folded into the environment header; unparseable lines are ignored.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Package     string  `json:"package,omitempty"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Report is the emitted document.
type Report struct {
	Label   string            `json:"label,omitempty"`
	Env     map[string]string `json:"env,omitempty"`
	Results []Result          `json:"results"`
}

func main() {
	label := flag.String("label", "", "free-form label recorded in the output (e.g. 'after', a commit sha)")
	flag.Parse()

	rep := Report{Label: *label, Env: map[string]string{}, Results: []Result{}}
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"),
			strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "cpu:"):
			if k, v, ok := strings.Cut(line, ":"); ok {
				rep.Env[k] = strings.TrimSpace(v)
			}
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseBench(line); ok {
				r.Package = pkg
				rep.Results = append(rep.Results, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: write: %v\n", err)
		os.Exit(1)
	}
}

// parseBench decodes one result line of the form
//
//	BenchmarkName-8   5  83957721 ns/op  5319251 B/op  776 allocs/op
func parseBench(line string) (Result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !hasUnit(f, "ns/op") {
		return Result{}, false
	}
	var r Result
	r.Name = strings.TrimSuffix(f[0], "-"+cpuSuffix(f[0]))
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r.Iterations = iters
	for i := 2; i+1 < len(f); i += 2 {
		val := f[i]
		unit := f[i+1]
		switch unit {
		case "ns/op":
			if v, err := strconv.ParseFloat(val, 64); err == nil {
				r.NsPerOp = v
			}
		case "B/op":
			if v, err := strconv.ParseInt(val, 10, 64); err == nil {
				r.BytesPerOp = v
			}
		case "allocs/op":
			if v, err := strconv.ParseInt(val, 10, 64); err == nil {
				r.AllocsPerOp = v
			}
		}
	}
	return r, r.NsPerOp > 0
}

func hasUnit(fields []string, unit string) bool {
	for _, f := range fields {
		if f == unit {
			return true
		}
	}
	return false
}

// cpuSuffix extracts the trailing GOMAXPROCS suffix ("8" in
// "BenchmarkFoo-8") so names compare across machines; returns "" if none.
func cpuSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return ""
	}
	suf := name[i+1:]
	if _, err := strconv.Atoi(suf); err != nil {
		return ""
	}
	return suf
}
