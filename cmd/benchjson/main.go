// Command benchjson converts `go test -bench` output on stdin into a JSON
// document on stdout, so CI can archive benchmark runs as machine-readable
// artifacts (e.g. BENCH_PR2.json, BENCH_PR7.json) and humans can diff them
// across commits.
//
// Usage:
//
//	go test ./internal/netsim -run '^$' -bench . -benchmem | benchjson -label after > BENCH.json
//
// Baseline diff mode compares the run against a committed reference and
// fails CI loudly on hot-path regressions (the JSON document is still
// written to stdout, so one pass both gates and produces the artifact):
//
//	... | benchjson -label "$SHA" -baseline BENCH_BASELINE.json > BENCH_PR7.json
//
// Every benchmark present in both runs is compared by allocs/op (hard gate,
// -max-alloc-ratio, default 1.25: allocation counts are deterministic, so a
// quarter more is a real regression, not noise) and — only when
// -max-ns-ratio is set above zero — by ns/op (shared CI runners are noisy;
// a generous 3-5× catches complexity-class regressions without flaking).
// The diff table goes to stderr; exit status 3 means at least one benchmark
// exceeded a threshold. Benchmarks found in only one of the two runs are
// reported but never fatal, so the baseline may cover a superset of any
// single CI shard.
//
// Lines that are not benchmark results (goos/pkg headers, PASS/ok) are
// folded into the environment header; unparseable lines are ignored.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Package     string  `json:"package,omitempty"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Report is the emitted document.
type Report struct {
	Label   string            `json:"label,omitempty"`
	Env     map[string]string `json:"env,omitempty"`
	Results []Result          `json:"results"`
}

func main() {
	label := flag.String("label", "", "free-form label recorded in the output (e.g. 'after', a commit sha)")
	baseline := flag.String("baseline", "", "compare against this committed benchjson document and exit 3 past a threshold")
	maxAllocRatio := flag.Float64("max-alloc-ratio", 1.25, "baseline mode: fail when allocs/op exceeds baseline by this factor")
	maxNsRatio := flag.Float64("max-ns-ratio", 0, "baseline mode: fail when ns/op exceeds baseline by this factor (0 = report only; wall time is noisy on shared runners)")
	flag.Parse()

	rep := Report{Label: *label, Env: map[string]string{}, Results: []Result{}}
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"),
			strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "cpu:"):
			if k, v, ok := strings.Cut(line, ":"); ok {
				rep.Env[k] = strings.TrimSpace(v)
			}
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseBench(line); ok {
				r.Package = pkg
				rep.Results = append(rep.Results, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: write: %v\n", err)
		os.Exit(1)
	}
	if *baseline != "" {
		regressed, err := diffBaseline(os.Stderr, rep, *baseline, *maxAllocRatio, *maxNsRatio)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: baseline: %v\n", err)
			os.Exit(1)
		}
		if regressed {
			os.Exit(3)
		}
	}
}

// diffBaseline compares cur against the report stored at path, writing one
// diff line per benchmark to w. It returns true when any shared benchmark
// exceeds a threshold: allocs/op > maxAllocRatio × baseline, or — when
// maxNsRatio > 0 — ns/op > maxNsRatio × baseline.
func diffBaseline(w io.Writer, cur Report, path string, maxAllocRatio, maxNsRatio float64) (regressed bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return false, err
	}
	var base Report
	if err := json.Unmarshal(data, &base); err != nil {
		return false, fmt.Errorf("%s: %w", path, err)
	}
	baseByName := make(map[string]Result, len(base.Results))
	for _, r := range base.Results {
		baseByName[r.Name] = r
	}
	seen := make(map[string]bool, len(cur.Results))
	for _, r := range cur.Results {
		seen[r.Name] = true
		b, ok := baseByName[r.Name]
		if !ok {
			fmt.Fprintf(w, "benchjson: %-44s new (no baseline entry)\n", r.Name)
			continue
		}
		status := "ok"
		nsRatio := ratio(r.NsPerOp, b.NsPerOp)
		allocRatio := ratio(float64(r.AllocsPerOp), float64(b.AllocsPerOp))
		if (b.AllocsPerOp > 0 && allocRatio > maxAllocRatio) ||
			(b.AllocsPerOp == 0 && r.AllocsPerOp > 0) {
			// A zero-alloc baseline is a hard-won property; any allocation
			// at all loses it, ratio or no ratio.
			status = "ALLOC REGRESSION"
			regressed = true
		}
		if maxNsRatio > 0 && b.NsPerOp > 0 && nsRatio > maxNsRatio {
			if status == "ok" {
				status = "NS REGRESSION"
			} else {
				status += " + NS REGRESSION"
			}
			regressed = true
		}
		fmt.Fprintf(w, "benchjson: %-44s ns/op %.0f -> %.0f (x%.2f)  allocs/op %d -> %d (x%.2f)  %s\n",
			r.Name, b.NsPerOp, r.NsPerOp, nsRatio, b.AllocsPerOp, r.AllocsPerOp, allocRatio, status)
	}
	for _, b := range base.Results {
		if !seen[b.Name] {
			fmt.Fprintf(w, "benchjson: %-44s missing from this run (baseline-only)\n", b.Name)
		}
	}
	return regressed, nil
}

// ratio returns cur/base, or 0 when the baseline is zero (the zero-alloc
// case is gated separately: any allocation against a zero baseline fails).
func ratio(cur, base float64) float64 {
	if base <= 0 {
		return 0
	}
	return cur / base
}

// parseBench decodes one result line of the form
//
//	BenchmarkName-8   5  83957721 ns/op  5319251 B/op  776 allocs/op
func parseBench(line string) (Result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !hasUnit(f, "ns/op") {
		return Result{}, false
	}
	var r Result
	r.Name = strings.TrimSuffix(f[0], "-"+cpuSuffix(f[0]))
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r.Iterations = iters
	for i := 2; i+1 < len(f); i += 2 {
		val := f[i]
		unit := f[i+1]
		switch unit {
		case "ns/op":
			if v, err := strconv.ParseFloat(val, 64); err == nil {
				r.NsPerOp = v
			}
		case "B/op":
			if v, err := strconv.ParseInt(val, 10, 64); err == nil {
				r.BytesPerOp = v
			}
		case "allocs/op":
			if v, err := strconv.ParseInt(val, 10, 64); err == nil {
				r.AllocsPerOp = v
			}
		}
	}
	return r, r.NsPerOp > 0
}

func hasUnit(fields []string, unit string) bool {
	for _, f := range fields {
		if f == unit {
			return true
		}
	}
	return false
}

// cpuSuffix extracts the trailing GOMAXPROCS suffix ("8" in
// "BenchmarkFoo-8") so names compare across machines; returns "" if none.
func cpuSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return ""
	}
	suf := name[i+1:]
	if _, err := strconv.Atoi(suf); err != nil {
		return ""
	}
	return suf
}
