// Command topogen generates a transit-stub physical topology and prints its
// structure and latency statistics — the GT-ITM role in the paper's §5.1.
//
// Usage:
//
//	topogen -preset ts-large [-seed 1] [-sample 2000]
//	topogen -domains 4 -transit 3 -stubs 2 -hosts 10
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/netsim"
	"repro/internal/rng"
)

func main() {
	var (
		preset  = flag.String("preset", "ts-large", "preset: ts-large | ts-small | custom")
		seed    = flag.Uint64("seed", 1, "deterministic seed")
		sample  = flag.Int("sample", 2000, "random host pairs to sample for the latency histogram")
		domains = flag.Int("domains", 4, "custom: transit domains")
		transit = flag.Int("transit", 4, "custom: transit nodes per domain")
		stubs   = flag.Int("stubs", 3, "custom: stub domains per transit node")
		hosts   = flag.Int("hosts", 20, "custom: hosts per stub domain")
		dot     = flag.String("dot", "", "write the topology as Graphviz DOT to this file ('-' for stdout)")
	)
	flag.Parse()

	var cfg netsim.Config
	switch *preset {
	case "ts-large":
		cfg = netsim.TSLarge()
	case "ts-small":
		cfg = netsim.TSSmall()
	case "custom":
		cfg = netsim.TSLarge()
		cfg.Name = "custom"
		cfg.TransitDomains = *domains
		cfg.TransitNodesPerDomain = *transit
		cfg.StubDomainsPerTransit = *stubs
		cfg.NodesPerStub = *hosts
	default:
		fmt.Fprintf(os.Stderr, "topogen: unknown preset %q\n", *preset)
		os.Exit(2)
	}

	r := rng.New(*seed)
	net, err := netsim.Generate(cfg, r)
	if err != nil {
		fmt.Fprintf(os.Stderr, "topogen: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(net)
	fmt.Printf("transit domains: %d, transit/domain: %d, stub domains/transit: %d, hosts/stub: %d\n",
		cfg.TransitDomains, cfg.TransitNodesPerDomain, cfg.StubDomainsPerTransit, cfg.NodesPerStub)

	if *dot != "" {
		out := os.Stdout
		if *dot != "-" {
			f, err := os.Create(*dot)
			if err != nil {
				fmt.Fprintf(os.Stderr, "topogen: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			out = f
		}
		err := net.Graph.WriteDOT(out, cfg.Name,
			func(v int) string {
				if net.Tiers[v] == netsim.TierTransit {
					return fmt.Sprintf("T%d.%d", net.Domain[v], v)
				}
				return fmt.Sprintf("s%d", v)
			},
			func(v int) string {
				if net.Tiers[v] == netsim.TierTransit {
					return "shape=box, style=filled"
				}
				return ""
			})
		if err != nil {
			fmt.Fprintf(os.Stderr, "topogen: %v\n", err)
			os.Exit(1)
		}
		if *dot != "-" {
			fmt.Printf("wrote DOT to %s\n", *dot)
		}
	}

	// Host-to-host latency distribution over random pairs.
	oracle := netsim.NewOracle(net)
	lat := make([]float64, 0, *sample)
	for i := 0; i < *sample; i++ {
		u := net.StubHosts[r.Intn(len(net.StubHosts))]
		v := net.StubHosts[r.Intn(len(net.StubHosts))]
		if u == v {
			continue
		}
		lat = append(lat, oracle.Latency(u, v))
	}
	if len(lat) == 0 {
		return
	}
	sort.Float64s(lat)
	pct := func(p float64) float64 { return lat[int(p*float64(len(lat)-1))] }
	sum := 0.0
	for _, l := range lat {
		sum += l
	}
	fmt.Printf("host-pair latency (ms): mean=%.1f p10=%.1f p50=%.1f p90=%.1f max=%.1f (n=%d pairs)\n",
		sum/float64(len(lat)), pct(0.10), pct(0.50), pct(0.90), lat[len(lat)-1], len(lat))
}
