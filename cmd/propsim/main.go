// Command propsim runs the paper-reproduction experiments and prints the
// series each figure plots.
//
// Usage:
//
//	propsim -list
//	propsim -exp fig5a [-seed 1] [-trials 3] [-scale 1.0]
//	propsim -exp all [-scale 0.5]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiment"
)

func main() {
	var (
		expID      = flag.String("exp", "", "experiment id (or 'all')")
		seed       = flag.Uint64("seed", 1, "deterministic seed")
		trials     = flag.Int("trials", 3, "independent trials to average")
		scale      = flag.Float64("scale", 1.0, "scale factor in (0,1]: shrinks node counts and workloads")
		list       = flag.Bool("list", false, "list available experiments")
		format     = flag.String("format", "table", "output format: table | csv | json")
		plot       = flag.Bool("plot", false, "render an ASCII chart after the table")
		oracleRows = flag.Int("oracle-rows", 0, "cap cached latency-oracle rows per trial (0 = unbounded); use >= the overlay size or the cache thrashes")
		oracleF32  = flag.Bool("oracle-f32", false, "store oracle rows as float32 (half the cache memory, sub-ppm rounding)")
	)
	flag.Parse()

	if *list || *expID == "" {
		fmt.Println("available experiments:")
		for _, id := range experiment.IDs() {
			fmt.Printf("  %-9s %s\n", id, experiment.Describe(id))
		}
		if *expID == "" && !*list {
			fmt.Fprintln(os.Stderr, "\nerror: -exp required")
			os.Exit(2)
		}
		return
	}

	ids := []string{*expID}
	if *expID == "all" {
		ids = experiment.IDs()
	}
	opt := experiment.Options{
		Seed: *seed, Trials: *trials, Scale: *scale,
		OracleRowBudget: *oracleRows, OracleFloat32: *oracleF32,
	}
	for _, id := range ids {
		start := time.Now()
		res, err := experiment.Run(id, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "propsim: %s: %v\n", id, err)
			os.Exit(1)
		}
		switch *format {
		case "table":
			res.Render(os.Stdout)
			if *plot {
				res.Plot(os.Stdout, 72, 18)
			}
			fmt.Printf("(%s completed in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
		case "csv":
			if err := res.WriteCSV(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "propsim: csv: %v\n", err)
				os.Exit(1)
			}
		case "json":
			if err := res.WriteJSON(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "propsim: json: %v\n", err)
				os.Exit(1)
			}
		default:
			fmt.Fprintf(os.Stderr, "propsim: unknown format %q\n", *format)
			os.Exit(2)
		}
	}
}
