// Command propsim runs the paper-reproduction experiments and prints the
// series each figure plots.
//
// Usage:
//
//	propsim -list
//	propsim -exp fig5a [-seed 1] [-trials 3] [-scale 1.0]
//	propsim -exp all [-scale 0.5]
//
// Robustness (DESIGN.md §9, the figR* family):
//
//	propsim -exp figRa -loss 0.05            # collapse the loss sweep to {0, 5%}
//	propsim -exp figRb -crash 0.10           # collapse the crash sweep to {0, 10%}
//	propsim -exp figRc -partition 300000     # 5-minute partition window
//
// A fault flag passed to an experiment that does not consume it is an
// error, not a silent no-op.
//
// Scaling (DESIGN.md §12, SCALING.md):
//
//	propsim -exp fig5a-scale                             # full ladder to 10^6 peers
//	propsim -exp fig5a-scale -scale-n 100000 -metrics-out scale.jsonl
//	propsim -exp fig5a-scale -shards 4                   # same bytes, different wall time
//	propsim -exp fig5a-scale -loss 0.02 -crash 0.1       # faults on every rung
//	propsim -exp figR-scale -scale-n 100000 -loss 0.05 -crash 0.1   # fault sweeps at scale
//
// Observability (DESIGN.md §8, EXPERIMENTS.md "Metrics streams"):
//
//	propsim -exp fig5a -metrics -metrics-out fig5a.jsonl [-metrics-csv fig5a.csv]
//	propsim -exp fig5a -al-mode incremental -metrics-out fig5a.jsonl    # eq. (3) AL series
//	propsim -exp churn -al-mode sampled -metrics-out churn.jsonl        # AL + skip counter
//	propsim -exp fig5a -metrics-wall -metrics-out fig5a.jsonl   # + wall-clock spans
//	propsim -exp all -scale 0.5 -pprof localhost:6060           # live pprof/expvar
package main

import (
	"expvar"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/experiment"
	"repro/internal/obs"
)

// liveRegistry exposes the registry of the experiment currently running to
// the expvar endpoint, so `curl :6060/debug/vars | jq .prop_metrics` shows
// counter totals while a long run is in flight.
var liveRegistry atomic.Pointer[obs.Registry]

func main() {
	var (
		expID      = flag.String("exp", "", "experiment id (or 'all')")
		seed       = flag.Uint64("seed", 1, "deterministic seed")
		trials     = flag.Int("trials", 3, "independent trials to average")
		scale      = flag.Float64("scale", 1.0, "scale factor in (0,1]: shrinks node counts and workloads")
		list       = flag.Bool("list", false, "list available experiments")
		format     = flag.String("format", "table", "output format: table | csv | json")
		plot       = flag.Bool("plot", false, "render an ASCII chart after the table")
		oracleRows = flag.Int("oracle-rows", 0, "cap cached latency-oracle rows per trial (0 = unbounded); use >= the overlay size or the cache thrashes")
		oracleF32  = flag.Bool("oracle-f32", false, "store oracle rows as float32 (half the cache memory, sub-ppm rounding)")

		alMode = flag.String("al-mode", "", "record the eq. (3) average-latency series in fig5*/churn metrics streams: exact | incremental | sampled | sketch (empty = off, byte-identical output)")

		scaleN = flag.Int("scale-n", 0, "fig5a-scale: cap the peer ladder at this n (0 = full ladder to 1e6)")
		shards = flag.Int("shards", 0, "fig5a-scale: parallel engines in the sharded simulator (0 = one per transit domain); any value yields byte-identical streams")

		faultLoss  = flag.Float64("loss", 0, "message-loss probability: collapses the figRa/figR-scale sweep to {0, value}, attaches loss+dup+jitter to every fig5a-scale rung; rejected by other experiments (0 = default)")
		faultCrash = flag.Float64("crash", 0, "crash-stop fraction: collapses the figRb/figR-scale sweep to {0, value}, attaches churn to every fig5a-scale rung; rejected by other experiments (0 = default)")
		faultPart  = flag.Float64("partition", 0, "partition window length in simulated ms for figRc/figR-scale/fig5a-scale; rejected by other experiments (0 = default)")

		metricsOn   = flag.Bool("metrics", false, "collect the observability metrics stream (implied by -metrics-out/-metrics-csv)")
		metricsOut  = flag.String("metrics-out", "", "write the metrics stream as JSONL to this file ('-' = stdout)")
		metricsCSV  = flag.String("metrics-csv", "", "write the plottable metrics records as CSV to this file")
		metricsWall = flag.Bool("metrics-wall", false, "include wall-clock fields (span wall_ms, manifest unix_time) in the metrics stream; forfeits byte-determinism")
		pprofAddr   = flag.String("pprof", "", "serve net/http/pprof and expvar (with live metrics snapshots) on this address, e.g. localhost:6060")
	)
	flag.Parse()

	if *list || *expID == "" {
		fmt.Println("available experiments:")
		for _, id := range experiment.IDs() {
			fmt.Printf("  %-9s %s\n", id, experiment.Describe(id))
		}
		if *expID == "" && !*list {
			fmt.Fprintln(os.Stderr, "\nerror: -exp required")
			os.Exit(2)
		}
		return
	}

	if *pprofAddr != "" {
		expvar.Publish("prop_metrics", expvar.Func(func() interface{} {
			return liveRegistry.Load().Snapshot()
		}))
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "propsim: pprof endpoint: %v\n", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "propsim: pprof/expvar on http://%s/debug/pprof and /debug/vars\n", *pprofAddr)
	}

	collect := *metricsOn || *metricsOut != "" || *metricsCSV != "" || *metricsWall
	jsonlW := openOut(*metricsOut, collect && *metricsOut != "")
	csvW := openOut(*metricsCSV, collect && *metricsCSV != "")
	defer closeOut(jsonlW)
	defer closeOut(csvW)
	if collect && jsonlW == nil && csvW == nil {
		jsonlW = os.Stdout // -metrics alone streams JSONL to stdout after the tables
	}

	ids := []string{*expID}
	if *expID == "all" {
		ids = experiment.IDs()
	}
	opt := experiment.Options{
		Seed: *seed, Trials: *trials, Scale: *scale,
		OracleRowBudget: *oracleRows, OracleFloat32: *oracleF32,
		FaultLoss: *faultLoss, FaultCrash: *faultCrash, FaultPartitionMS: *faultPart,
		ALMode: *alMode, ScaleMaxN: *scaleN, Shards: *shards,
	}
	firstCSV := true
	for _, id := range ids {
		var reg *obs.Registry
		if collect {
			man := obs.NewManifest(id, *seed, *trials, *scale)
			man.Flags = map[string]string{
				"oracle-rows": strconv.Itoa(*oracleRows),
				"oracle-f32":  strconv.FormatBool(*oracleF32),
			}
			// Fault overrides enter the manifest only when set, so the
			// fault-free experiments' streams stay byte-identical to their
			// historical output.
			if *faultLoss > 0 {
				man.Flags["loss"] = strconv.FormatFloat(*faultLoss, 'g', -1, 64)
			}
			if *faultCrash > 0 {
				man.Flags["crash"] = strconv.FormatFloat(*faultCrash, 'g', -1, 64)
			}
			if *faultPart > 0 {
				man.Flags["partition"] = strconv.FormatFloat(*faultPart, 'g', -1, 64)
			}
			// The AL mode enters the manifest only when set, for the same
			// byte-compatibility reason as the fault overrides.
			if *alMode != "" {
				man.Flags["al-mode"] = *alMode
			}
			// Likewise the scaling knobs (fig5a-scale only).
			if *scaleN > 0 {
				man.Flags["scale-n"] = strconv.Itoa(*scaleN)
			}
			if *shards > 0 {
				man.Flags["shards"] = strconv.Itoa(*shards)
			}
			reg = obs.New(man)
			if *metricsWall {
				reg.EnableWallClock()
				man.UnixTime = time.Now().Unix()
				reg.SetManifest(man)
			}
			liveRegistry.Store(reg)
		}
		opt.Metrics = reg

		start := time.Now()
		res, err := experiment.Run(id, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "propsim: %s: %v\n", id, err)
			os.Exit(1)
		}
		switch *format {
		case "table":
			res.Render(os.Stdout)
			if *plot {
				res.Plot(os.Stdout, 72, 18)
			}
			fmt.Printf("(%s completed in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
		case "csv":
			if err := res.WriteCSV(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "propsim: csv: %v\n", err)
				os.Exit(1)
			}
		case "json":
			if err := res.WriteJSON(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "propsim: json: %v\n", err)
				os.Exit(1)
			}
		default:
			fmt.Fprintf(os.Stderr, "propsim: unknown format %q\n", *format)
			os.Exit(2)
		}

		if jsonlW != nil {
			if err := reg.WriteJSONL(jsonlW); err != nil {
				fmt.Fprintf(os.Stderr, "propsim: metrics jsonl: %v\n", err)
				os.Exit(1)
			}
		}
		if csvW != nil {
			emit := reg.AppendCSV
			if firstCSV {
				emit = reg.WriteCSV
				firstCSV = false
			}
			if err := emit(csvW); err != nil {
				fmt.Fprintf(os.Stderr, "propsim: metrics csv: %v\n", err)
				os.Exit(1)
			}
		}
	}
}

// openOut opens path for writing when enabled; "-" means stdout.
func openOut(path string, enabled bool) *os.File {
	if !enabled || path == "" {
		return nil
	}
	if path == "-" {
		return os.Stdout
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "propsim: %v\n", err)
		os.Exit(1)
	}
	return f
}

// closeOut closes a file opened by openOut (never stdout).
func closeOut(f *os.File) {
	if f != nil && f != os.Stdout {
		f.Close()
	}
}
