// Command doclint enforces the repository's documentation conventions with
// go/ast: every listed package must carry a package comment, and (unless
// -pkgdoc is set) every exported top-level identifier — type, function,
// method, and each exported const/var group — must have a doc comment.
//
// Usage:
//
//	doclint ./internal/obs ./internal/metrics   # strict: exported docs too
//	doclint -pkgdoc ./internal/*/               # package comments only
//
// Arguments are package directories (no pattern expansion — let the shell
// glob). Test files are skipped. Exit status 1 lists every violation, so
// CI output names the exact missing comment.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	pkgdocOnly := flag.Bool("pkgdoc", false, "only require package comments, not per-identifier docs")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: doclint [-pkgdoc] dir [dir...]")
		os.Exit(2)
	}
	var violations []string
	for _, dir := range flag.Args() {
		vs, err := lintDir(dir, *pkgdocOnly)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doclint: %s: %v\n", dir, err)
			os.Exit(2)
		}
		violations = append(violations, vs...)
	}
	for _, v := range violations {
		fmt.Println(v)
	}
	if len(violations) > 0 {
		fmt.Fprintf(os.Stderr, "doclint: %d violation(s)\n", len(violations))
		os.Exit(1)
	}
}

// lintDir parses one package directory and returns its violations.
func lintDir(dir string, pkgdocOnly bool) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var out []string
	for name, pkg := range pkgs {
		hasPkgDoc := false
		for _, f := range pkg.Files {
			if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
				hasPkgDoc = true
				break
			}
		}
		if !hasPkgDoc {
			out = append(out, fmt.Sprintf("%s: package %s has no package comment", dir, name))
		}
		if pkgdocOnly {
			continue
		}
		for file, f := range pkg.Files {
			out = append(out, lintFile(fset, filepath.Base(file), f)...)
		}
	}
	return out, nil
}

// lintFile reports exported top-level identifiers without doc comments.
func lintFile(fset *token.FileSet, file string, f *ast.File) []string {
	var out []string
	report := func(pos token.Pos, what, name string) {
		out = append(out, fmt.Sprintf("%s:%d: exported %s %s has no doc comment",
			file, fset.Position(pos).Line, what, name))
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || d.Doc != nil {
				continue
			}
			what, name := "function", d.Name.Name
			if d.Recv != nil {
				if !receiverExported(d.Recv) {
					continue
				}
				what = "method"
				name = receiverName(d.Recv) + "." + name
			}
			report(d.Pos(), what, name)
		case *ast.GenDecl:
			if d.Tok != token.TYPE && d.Tok != token.CONST && d.Tok != token.VAR {
				continue
			}
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && d.Doc == nil && s.Doc == nil {
						report(s.Pos(), "type", s.Name.Name)
					}
				case *ast.ValueSpec:
					// A group doc on the GenDecl covers every spec; a spec
					// doc or trailing line comment covers just that spec.
					if d.Doc != nil || s.Doc != nil || s.Comment != nil {
						continue
					}
					for _, n := range s.Names {
						if n.IsExported() {
							report(s.Pos(), strings.ToLower(d.Tok.String()), n.Name)
						}
					}
				}
			}
		}
	}
	return out
}

// receiverExported reports whether a method's receiver type is exported —
// methods on unexported types are not part of the package API.
func receiverExported(recv *ast.FieldList) bool {
	return ast.IsExported(receiverName(recv))
}

// receiverName extracts the bare receiver type name (pointer and generic
// instantiation stripped).
func receiverName(recv *ast.FieldList) string {
	if len(recv.List) == 0 {
		return ""
	}
	t := recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.IndexListExpr:
			t = x.X
		case *ast.Ident:
			return x.Name
		default:
			return ""
		}
	}
}
