// Command propnode runs the live PROP runtime outside the test harness.
//
// Four modes:
//
//	propnode                     # loopback demo: N agents optimize a
//	                             # clustered topology over the in-process
//	                             # transport, then print the improvement
//	propnode -mode chaos -seed 7 # seed-deterministic chaos soak: kills,
//	                             # recoveries, a partition window, mailbox
//	                             # pressure; deterministic log on stdout
//	propnode -mode udp-echo -bind 127.0.0.1:9753
//	                             # answer pings over real UDP until -dur
//	propnode -mode udp-ping -peer 127.0.0.1:9753 -count 5
//	                             # ping a udp-echo peer and print wall RTTs
//
// The loopback demo is the quick-start of DESIGN.md §10; the two UDP modes
// pair up as the two-process smoke test CI runs on localhost, and the chaos
// mode is the CI chaos job's soak (run twice, logs diffed — see
// EXPERIMENTS.md "Chaos schedule knobs").
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/overlay"
	"repro/internal/propnode"
	"repro/internal/transport"
)

func main() {
	var (
		mode     = flag.String("mode", "loopback", "loopback | chaos | udp-echo | udp-ping")
		n        = flag.Int("n", 16, "loopback/chaos: number of agents")
		dur      = flag.Duration("dur", 2*time.Second, "how long to run (loopback demo, udp-echo lifetime)")
		policy   = flag.String("policy", "propg", "loopback/chaos: propg | propo")
		seed     = flag.Uint64("seed", 1, "loopback/chaos: runtime seed")
		interval = flag.Float64("interval", 5, "loopback: probe interval INIT_TIMER in ms")
		bind     = flag.String("bind", "127.0.0.1:0", "udp-echo: address to bind")
		peer     = flag.String("peer", "", "udp-ping: peer address to ping")
		count    = flag.Int("count", 5, "udp-ping: number of pings")
		steps    = flag.Int("steps", 0, "chaos: schedule length in steps (0 = default)")
		stepMS   = flag.Float64("step-ms", 0, "chaos: step length in ms (0 = default)")
		killFrac = flag.Float64("kill-frac", 0, "chaos: fraction of agents killed (0 = default 0.25)")
	)
	flag.Parse()

	var err error
	switch *mode {
	case "loopback":
		err = runLoopback(*n, *dur, *policy, *seed, *interval)
	case "chaos":
		err = runChaos(*n, *policy, *seed, *steps, *stepMS, *killFrac)
	case "udp-echo":
		err = runUDPEcho(*bind, *dur)
	case "udp-ping":
		err = runUDPPing(*peer, *count)
	default:
		err = fmt.Errorf("unknown -mode %q", *mode)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "propnode:", err)
		os.Exit(1)
	}
}

// runChaos executes one seeded chaos schedule. The deterministic log goes to
// stdout (CI diffs it across a double run); the wall-clock-dependent counter
// summary goes to stderr so it can never pollute the determinism contract.
func runChaos(n int, policyName string, seed uint64, steps int, stepMS, killFrac float64) error {
	var policy core.Policy
	switch policyName {
	case "propg":
		policy = core.PROPG
	case "propo":
		policy = core.PROPO
	default:
		return fmt.Errorf("unknown -policy %q", policyName)
	}
	res, err := chaos.Run(chaos.Config{
		N:        n,
		Seed:     seed,
		Steps:    steps,
		StepMS:   stepMS,
		KillFrac: killFrac,
		Policy:   policy,
	})
	if err != nil {
		return err
	}
	fmt.Print(res.Log)
	fmt.Fprintf(os.Stderr, "chaos: %d kills, %d recovers\nchaos summary: %s\n",
		res.Kills, res.Recovers, res.Summary)
	return res.AuditErr
}

// clusterLat is the demo's two-cluster latency model: same-parity hosts are
// 1ms apart, cross-parity 20ms — plenty of structure for PROP to exploit.
func clusterLat(a, b int) float64 {
	if a == b {
		return 0
	}
	if a%2 == b%2 {
		return 1
	}
	return 20
}

func runLoopback(n int, dur time.Duration, policyName string, seed uint64, intervalMS float64) error {
	var policy core.Policy
	switch policyName {
	case "propg":
		policy = core.PROPG
	case "propo":
		policy = core.PROPO
	default:
		return fmt.Errorf("unknown -policy %q", policyName)
	}
	lb := transport.NewLoopback(transport.LoopbackConfig{
		DelayMS: func(a, b int) float64 { return clusterLat(a, b) / 2 },
	})
	rt := propnode.New(lb, propnode.Config{
		Policy:          policy,
		ProbeIntervalMS: intervalMS,
		Lat:             clusterLat,
		Seed:            seed,
	})
	hosts := make([]int, n)
	for i := range hosts {
		hosts[i] = i
	}
	if err := rt.Start(hosts); err != nil {
		return err
	}
	var before float64
	rt.View(func(o *overlay.Overlay) { before = o.MeanLinkLatency() })
	fmt.Printf("loopback: %d agents, %s, INIT_TIMER %.0fms, running %v\n", n, policy, intervalMS, dur)
	time.Sleep(dur)
	rt.Stop()

	o := rt.Overlay()
	after := o.MeanLinkLatency()
	c := rt.Counters()
	fmt.Printf("probes %d  exchanges %d  rejected %d  walk-failures %d\n",
		c.Probes, c.Exchanges, c.Rejected, c.WalkFailures)
	fmt.Printf("mean link latency: %.3fms -> %.3fms\n", before, after)
	if err := o.CheckInvariants(); err != nil {
		return fmt.Errorf("overlay invariants violated: %w", err)
	}
	fmt.Println("overlay invariants: ok")
	return nil
}

func runUDPEcho(bind string, dur time.Duration) error {
	host, port, err := splitHostPort(bind)
	if err != nil {
		return err
	}
	net := transport.NewUDPNetwork(host)
	ep, err := net.OpenAt(1, port)
	if err != nil {
		return err
	}
	node := transport.NewNode(ep)
	defer node.Close()
	addr, _ := net.Addr(1)
	fmt.Printf("udp-echo: host 1 listening on %s for %v\n", addr, dur)
	time.Sleep(dur)
	s := node.Stats()
	fmt.Printf("udp-echo: done (answered traffic; %d stale replies absorbed)\n", s.StaleReplies)
	return nil
}

func runUDPPing(peer string, count int) error {
	if peer == "" {
		return fmt.Errorf("udp-ping needs -peer host:port")
	}
	net := transport.NewUDPNetwork("")
	ep, err := net.Open(2)
	if err != nil {
		return err
	}
	if err := net.AddPeer(1, peer); err != nil {
		return err
	}
	node := transport.NewNode(ep)
	defer node.Close()
	for i := 0; i < count; i++ {
		rtt, err := node.Ping(1, time.Second, 3)
		if err != nil {
			return fmt.Errorf("ping %d to %s: %w", i+1, peer, err)
		}
		fmt.Printf("ping %d: %.3fms\n", i+1, rtt)
	}
	fmt.Printf("udp-ping: %d/%d pings answered by %s\n", count, count, peer)
	return nil
}

// splitHostPort splits "ip:port", tolerating a bare ip (port 0).
func splitHostPort(s string) (host string, port int, err error) {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == ':' {
			host = s[:i]
			_, err = fmt.Sscanf(s[i+1:], "%d", &port)
			if err != nil {
				return "", 0, fmt.Errorf("bad address %q: %v", s, err)
			}
			return host, port, nil
		}
	}
	return s, 0, nil
}
